"""Server-side ReSync sessions.

§5.2: the ReSync master keeps, per update session, a *session history*
of entries leaving the content of the synchronized search — the piece
of state that lets it send the minimal update set (eq. 2) without
changelogs or tombstones.

A :class:`Session` tracks, between polls, the coalesced pending actions
for its search request.  Coalescing is per-DN with upsert semantics at
the consumer, so only the *net* effect of an update burst travels:

=============  ==============  =========================
pending        new action      result
=============  ==============  =========================
(none)         any             that action
ADD            MODIFY          ADD with the newer entry
ADD            DELETE          (nothing) / DELETE¹
MODIFY         MODIFY          MODIFY with newer entry
MODIFY         DELETE          DELETE
DELETE         ADD             ADD (replica upserts)
=============  ==============  =========================

¹ A pending ADD cancelled by a DELETE nets to nothing only when the
consumer never saw the entry.  If the consumer *holds* it (it was in a
previously delivered batch, left the content and re-entered since the
last poll), the net action is a DELETE — dropping it would strand the
entry at the replica.  The session tracks the delivered state to tell
the two cases apart.

Sessions are identified by opaque cookies and expire after
``idle_limit`` polls of global session-store activity without being
polled (the paper's "admin time limit", in logical time).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..ldap.controls import SyncAction
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.query import SearchRequest
from .protocol import SyncProtocolError, SyncUpdate

__all__ = ["Session", "SessionStore"]


class Session:
    """One replica's synchronization session for one search request."""

    def __init__(self, session_id: str, request: SearchRequest):
        self.session_id = session_id
        self.request = request
        # Net pending action per DN since the last served poll.
        self._pending: Dict[DN, SyncUpdate] = {}
        # Last served batch, retained until the next cookie acknowledges
        # it (at-least-once delivery across lost responses).
        self._unacked: Dict[DN, SyncUpdate] = {}
        # DNs the consumer holds, assuming it applied everything sent.
        self.content_dns: Set[DN] = set()
        # DNs actually *delivered* to the consumer (initial content plus
        # served batches).  Unlike content_dns — which tracks the
        # master-side content eagerly, pending updates included — this
        # only advances when a batch is built, so the coalescer can tell
        # "the consumer never saw this entry" from "it left and
        # re-entered content since the last poll".
        self._delivered: Set[DN] = set()
        self.persist_queue: Optional[List[SyncUpdate]] = None
        # True while the provider is delivering this session's persist
        # queue — a deliver callback that triggers another master update
        # must enqueue, not re-enter the delivery loop (see
        # ResyncProvider._flush_persist).
        self.draining = False
        self.polls = 0
        self.generation = 0
        self.last_active_tick = 0
        # --- bounded history (repro.sync.durability) -------------------
        # Approximate wire bytes of the coalesced pending actions,
        # maintained incrementally so the cap check is O(1).
        self.pending_bytes = 0
        # Caps on the pending history (None: unbounded, the seed
        # behavior).  Crossing either cap abandons the history: pending
        # is cleared, the flag below is raised, and the provider serves
        # the next poll as an incomplete-history resume (eq. 3).
        self.history_max_entries: Optional[int] = None
        self.history_max_bytes: Optional[int] = None
        self.history_overflowed = False
        self.overflow_callback: Optional[Callable[["Session"], None]] = None
        # --- consumer-state watermarks (durability/recovery) -----------
        # CSN at which the latest / previous served batch was built: a
        # consumer presenting generation G holds the master state of
        # drain_csn; presenting G-1, of prev_drain_csn.  These are the
        # safe "changed since" points for a degraded eq.-3 resume.
        self.drain_csn = 0
        self.prev_drain_csn = 0
        # The "since" CSN of an unacknowledged degraded resume (set when
        # one is served, cleared when the next cookie acknowledges it);
        # a retry at generation G-1 re-serves the resume from here.
        self.degraded_since_csn: Optional[int] = None

    # ------------------------------------------------------------------
    # update ingestion (called by the provider's update listener)
    # ------------------------------------------------------------------
    def observe(
        self,
        in_before: bool,
        in_after: bool,
        old_dn: DN,
        new_dn: DN,
        after_entry: Optional[Entry],
    ) -> None:
        """Fold one master update into the session's pending actions.

        ``in_before``/``in_after`` say whether the entry was inside the
        session's content before/after the update; ``old_dn``/``new_dn``
        differ only for modifyDN.  Figure 3's semantics: a rename that
        keeps an entry in content is a delete for the old DN plus an add
        for the new DN.
        """
        if not in_before and not in_after:
            return
        if in_before and not in_after:
            self._record(SyncUpdate.delete(old_dn))
        elif not in_before and in_after:
            self._record(SyncUpdate.add(after_entry))
        else:  # stayed in content
            if old_dn != new_dn:
                self._record(SyncUpdate.delete(old_dn))
                self._record(SyncUpdate.add(after_entry))
            else:
                self._record(SyncUpdate.modify(after_entry))

    def enqueue(self, update: SyncUpdate) -> None:
        """Fold one pre-built update into the pending actions.

        Same semantics as :meth:`observe` once the outcome is known; the
        routed fan-out builds a single shared (frozen) ``SyncUpdate``
        per record outcome and enqueues it into every visited session
        instead of constructing one copy per session.
        """
        self._record(update)

    def _record(self, update: SyncUpdate) -> None:
        if self.persist_queue is not None:
            # Persist mode: notifications flow immediately, no coalescing.
            self.persist_queue.append(update)
            self._track_content(update)
            self._track_delivered(update)
            return
        if self.history_overflowed:
            # The history was abandoned at the cap: only the content
            # mirror advances; the next poll is served as an
            # incomplete-history resume, which re-derives everything.
            self._track_content(update)
            return
        pending = self._pending.get(update.dn)
        merged = self._coalesce(pending, update)
        if merged is None:
            self._pending.pop(update.dn, None)
        else:
            self._pending[update.dn] = merged
        self.pending_bytes += (merged.pdu_bytes if merged is not None else 0) - (
            pending.pdu_bytes if pending is not None else 0
        )
        self._track_content(update)
        self._check_history_cap()

    def _check_history_cap(self) -> None:
        over = (
            self.history_max_entries is not None
            and len(self._pending) > self.history_max_entries
        ) or (
            self.history_max_bytes is not None
            and self.pending_bytes > self.history_max_bytes
        )
        if not over:
            return
        self._pending.clear()
        self.pending_bytes = 0
        self.history_overflowed = True
        if self.overflow_callback is not None:
            self.overflow_callback(self)

    def _track_content(self, update: SyncUpdate) -> None:
        if update.action is SyncAction.DELETE:
            self.content_dns.discard(update.dn)
        elif update.action in (SyncAction.ADD, SyncAction.MODIFY):
            self.content_dns.add(update.dn)

    def _track_delivered(self, update: SyncUpdate) -> None:
        if update.action is SyncAction.DELETE:
            self._delivered.discard(update.dn)
        else:
            self._delivered.add(update.dn)

    def _coalesce(
        self, pending: Optional[SyncUpdate], new: SyncUpdate
    ) -> Optional[SyncUpdate]:
        if pending is None:
            return new
        if new.action is SyncAction.DELETE:
            if pending.action is SyncAction.ADD:
                if new.dn in self._delivered:
                    # The consumer holds the entry: it left the content
                    # (DELETE, coalesced with a later re-entry into this
                    # pending ADD) and is leaving again — the net effect
                    # since the last poll is a DELETE.
                    return new
                return None  # consumer never saw this entry
            return new
        # new carries an entry (add/modify)
        if pending.action is SyncAction.DELETE:
            return SyncUpdate.add(new.entry)
        if pending.action is SyncAction.ADD:
            return SyncUpdate.add(new.entry)
        return SyncUpdate.modify(new.entry)

    # ------------------------------------------------------------------
    # poll servicing (with at-least-once delivery)
    # ------------------------------------------------------------------
    def drain(self) -> List[SyncUpdate]:
        """Build the next update batch, retaining it until acknowledged.

        The batch is kept as the *unacknowledged* set: if the response
        is lost before the replica applies it, the replica retries with
        its previous cookie and :meth:`retransmit` replays the batch
        (merged with anything newer).  The next poll with the fresh
        cookie acknowledges and discards it.

        Deletes are emitted before adds so that a rename whose old and
        new DNs both appear applies cleanly at the consumer.
        """
        self._unacked = dict(self._pending)
        self._pending.clear()
        self.pending_bytes = 0
        updates = self._sorted(self._unacked)
        for update in updates:
            self._track_delivered(update)
        self.generation += 1
        self.polls += 1
        return updates

    def acknowledge(self) -> None:
        """The replica presented the latest cookie: drop the retained
        batch."""
        self._unacked = {}

    def retransmit(self) -> List[SyncUpdate]:
        """Replay the unacknowledged batch, folding in newer pending
        updates (a retry after a lost response).

        The merged batch becomes the new retained set; the generation
        (and thus the cookie) does not advance, so a further retry
        replays again.

        Merging differs from fresh-pending coalescing in one rule: a
        retained ADD followed by a DELETE must stay a DELETE — the lost
        response may in fact have been applied (response received,
        cookie lost), so the consumer might hold the entry.  Every
        action is idempotent at the consumer, so over-sending is safe;
        under-sending is not.
        """
        for dn, update in self._pending.items():
            sent = self._unacked.get(dn)
            if sent is None:
                merged: Optional[SyncUpdate] = update
            elif update.action is SyncAction.DELETE:
                merged = update  # never drop a delete against a sent add
            elif sent.action is SyncAction.DELETE:
                merged = SyncUpdate.add(update.entry)
            elif sent.action is SyncAction.ADD:
                merged = SyncUpdate.add(update.entry)
            else:
                merged = SyncUpdate.modify(update.entry)
            self._unacked[dn] = merged
        self._pending.clear()
        self.pending_bytes = 0
        self.polls += 1
        updates = self._sorted(self._unacked)
        for update in updates:
            self._track_delivered(update)
        return updates

    @staticmethod
    def _sorted(batch: Dict[DN, SyncUpdate]) -> List[SyncUpdate]:
        updates = list(batch.values())
        updates.sort(key=lambda u: (u.action is not SyncAction.DELETE, str(u.dn)))
        return updates

    def seed_content(self, entries: List[Entry]) -> None:
        """Record the initial content sent on the session's first poll."""
        self.content_dns = {e.dn for e in entries}
        self._delivered = {e.dn for e in entries}

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def retained_count(self) -> int:
        """Size of the unacknowledged batch retained for retransmission."""
        return len(self._unacked)


class SessionStore:
    """Cookie-keyed session registry with logical-time expiry."""

    def __init__(self, idle_limit: int = 1000):
        self._sessions: Dict[str, Session] = {}
        self._next_id = 1
        self.idle_limit = idle_limit
        self._tick = 0
        self._expiring = False

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def tick(self) -> int:
        """The logical activity clock (snapshot/recovery bookkeeping)."""
        return self._tick

    @property
    def next_id(self) -> int:
        """The next session id to be assigned (recovery bookkeeping)."""
        return self._next_id

    def restore_clock(self, tick: int, next_id: int) -> None:
        """Restore the activity clock and id counter from a snapshot, so
        post-recovery session ids and expiry decisions continue exactly
        where the crashed incarnation left off."""
        self._tick = tick
        self._next_id = next_id

    def create(self, request: SearchRequest) -> Session:
        """Open a new session for *request* and return it."""
        session_id = f"s{self._next_id}"
        self._next_id += 1
        session = Session(session_id, request)
        session.last_active_tick = self._tick
        self._sessions[session_id] = session
        return session

    def adopt(self, session: Session) -> None:
        """Re-insert a recovered *session* under its original id
        (journal replay); keeps the id counter ahead of it."""
        self._sessions[session.session_id] = session
        numeric = session.session_id.lstrip("s")
        if numeric.isdigit():
            self._next_id = max(self._next_id, int(numeric) + 1)

    def lookup(self, cookie: str) -> Session:
        """Resolve a cookie to its session.

        Raises :class:`SyncProtocolError` for unknown/expired cookies —
        the consumer must restart with a full reload (cookie=None).
        """
        session_id = cookie.split(":", 1)[0]
        session = self._sessions.get(session_id)
        if session is None:
            raise SyncProtocolError(f"unknown or expired cookie {cookie!r}")
        self._touch(session)
        return session

    def end(self, cookie: str) -> bool:
        """Terminate the session named by *cookie* (mode ``sync_end``).

        Returns whether a live session was actually ended — False for
        an unknown or already-ended cookie, which callers count as a
        no-op (``sync.session.unknown_cookie``) rather than erroring.
        """
        session_id = cookie.split(":", 1)[0]
        return self._sessions.pop(session_id, None) is not None

    def drop(self, session_id: str) -> bool:
        """Remove a session by id without cookie parsing or touching
        the activity clock (recovery/replay bookkeeping)."""
        return self._sessions.pop(session_id, None) is not None

    def touch_by_id(self, session_id: str) -> Optional[Session]:
        """Advance the activity clock for *session_id* exactly as a
        successful :meth:`lookup` would (journal replay); returns the
        session, or None when it no longer exists."""
        session = self._sessions.get(session_id)
        if session is not None:
            self._touch(session)
        return session

    def get(self, session_id: str) -> Optional[Session]:
        """The live session with *session_id*, or None.

        Unlike :meth:`lookup` this neither touches the activity clock
        nor raises — it is the provider's liveness probe (an expired
        session simply reads as gone)."""
        return self._sessions.get(session_id)

    def cookie_for(self, session: Session) -> str:
        """Cookie handed to the consumer to resume *session*.

        Encodes the session's batch generation: presenting the latest
        cookie acknowledges the previous batch; presenting the previous
        one requests a retransmission (lost-response recovery).
        """
        return f"{session.session_id}:{session.generation}"

    @staticmethod
    def generation_of(cookie: str) -> int:
        """The generation number encoded in *cookie*.

        Cookies are ``<session-id>:<generation>`` with optional
        ``:``-separated flags after the generation — ``:h`` stamps an
        incomplete-history (degraded) resume
        (docs/PROTOCOL.md §10).  Flags are ignored here.
        """
        parts = cookie.split(":")
        gen = parts[1] if len(parts) > 1 else ""
        if not gen.isdigit():
            raise SyncProtocolError(f"malformed cookie {cookie!r}")
        return int(gen)

    def service_poll(self, session: Session, cookie: str) -> List[SyncUpdate]:
        """Ack/advance or retransmit, per the cookie's generation."""
        generation = self.generation_of(cookie)
        if generation == session.generation:
            session.acknowledge()
            return session.drain()
        if generation == session.generation - 1:
            return session.retransmit()
        raise SyncProtocolError(
            f"cookie {cookie!r} is too old for session {session.session_id} "
            f"(at generation {session.generation}); full reload required"
        )

    def _touch(self, session: Session) -> None:
        self._tick += 1
        session.last_active_tick = self._tick
        self._expire()

    def _expire(self) -> None:
        """Drop sessions idle for more than ``idle_limit`` ticks.

        Two-phase (collect over a frozen item list, then drop), and
        reentrancy-guarded: a persist deliver callback can re-enter the
        store mid-delivery (``ResyncProvider._flush_persist`` → consumer
        polls → :meth:`lookup` → here), so expiry must neither mutate
        the map while an outer pass iterates it nor expire a session
        whose queue is being drained right now (``draining`` — it is
        demonstrably live; it will be collected on a later tick if it
        truly goes idle)."""
        if self._expiring:
            return
        self._expiring = True
        try:
            cutoff = self._tick - self.idle_limit
            stale = [
                sid
                for sid, session in list(self._sessions.items())
                if session.last_active_tick < cutoff and not session.draining
            ]
            for sid in stale:
                self._sessions.pop(sid, None)
        finally:
            self._expiring = False

    def active_sessions(self) -> List[Session]:
        return list(self._sessions.values())
