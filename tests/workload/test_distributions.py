"""Tests for workload sampling distributions."""

import random

import pytest

from repro.workload import TemporalMixer, WeightedChoice, ZipfSampler


class TestZipfSampler:
    def test_skew_orders_popularity(self):
        rng = random.Random(1)
        sampler = ZipfSampler(list(range(50)), exponent=1.2, rng=rng)
        counts = {}
        for _ in range(5000):
            item = sampler.sample()
            counts[item] = counts.get(item, 0) + 1
        ranked = sampler.population
        hot = sum(counts.get(item, 0) for item in ranked[:5])
        cold = sum(counts.get(item, 0) for item in ranked[-5:])
        assert hot > 5 * max(cold, 1)

    def test_covers_population_eventually(self):
        sampler = ZipfSampler(list("abc"), exponent=0.5, rng=random.Random(2))
        seen = {sampler.sample() for _ in range(500)}
        assert seen == {"a", "b", "c"}

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([], rng=random.Random(0))

    def test_deterministic_given_seed(self):
        a = ZipfSampler(list(range(10)), rng=random.Random(7))
        b = ZipfSampler(list(range(10)), rng=random.Random(7))
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]

    def test_no_shuffle_keeps_rank_order(self):
        sampler = ZipfSampler([10, 20, 30], rng=random.Random(0), shuffle=False)
        assert sampler.population == [10, 20, 30]


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(3)
        choice = WeightedChoice(["a", "b"], [99.0, 1.0], rng=rng)
        draws = [choice.sample() for _ in range(1000)]
        assert draws.count("a") > 900

    def test_table1_mix_shape(self):
        rng = random.Random(4)
        choice = WeightedChoice(
            ["serial", "mail", "dept", "loc"], [58, 24, 16, 2], rng=rng
        )
        draws = [choice.sample() for _ in range(10000)]
        assert abs(draws.count("serial") / 10000 - 0.58) < 0.03
        assert abs(draws.count("mail") / 10000 - 0.24) < 0.03

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            WeightedChoice(["a"], [1.0, 2.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedChoice(["a", "b"], [1.0, -1.0])

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            WeightedChoice(["a"], [0.0])


class TestTemporalMixer:
    def test_repeats_appear(self):
        rng = random.Random(5)
        counter = iter(range(100000))
        mixer = TemporalMixer(lambda: next(counter), repeat_probability=0.5, rng=rng)
        draws = [mixer.sample() for _ in range(500)]
        assert len(set(draws)) < len(draws)  # some repeats

    def test_zero_probability_never_repeats(self):
        counter = iter(range(100000))
        mixer = TemporalMixer(
            lambda: next(counter), repeat_probability=0.0, rng=random.Random(6)
        )
        draws = [mixer.sample() for _ in range(200)]
        assert len(set(draws)) == len(draws)

    def test_window_bounds_rereference_distance(self):
        rng = random.Random(7)
        counter = iter(range(100000))
        mixer = TemporalMixer(
            lambda: next(counter), repeat_probability=0.9, window=5, rng=rng
        )
        draws = [mixer.sample() for _ in range(300)]
        for i, item in enumerate(draws):
            first = draws.index(item)
            if first != i:
                # re-reference can only come from the recent window
                assert i - first <= 300  # sanity; detailed bound below
        # stronger: a repeated item must have occurred within the window
        for i in range(1, len(draws)):
            if draws[i] in draws[:i]:
                last = max(j for j in range(i) if draws[j] == draws[i])
                assert i - last <= 5 * 3  # window plus re-insertion slack

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            TemporalMixer(lambda: 1, repeat_probability=1.5)
