"""The LDAP search operation ("query") model.

§2.2 of the paper: a query consists of a **base** DN, a **scope**
(BASE / SINGLE LEVEL / SUBTREE), a **filter** and a set of requested
**attributes**.  This quadruple is the semantic unit the whole paper
works with — it is both the thing clients send and the paper's *unit of
replication*.

Scope values are ordered integers (BASE=0, ONE=1, SUB=2) exactly as the
containment algorithm ``QC`` of §4 assumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Union

from .dn import DN
from .entry import Entry
from .filter_parser import parse_filter
from .filters import Filter, MATCH_ALL, template_of
from .matching import matches

__all__ = ["Scope", "SearchRequest", "ALL_ATTRIBUTES"]


class Scope(enum.IntEnum):
    """Search scope; integer ordering is meaningful (BASE < ONE < SUB)."""

    BASE = 0
    ONE = 1  # SINGLE LEVEL
    SUB = 2  # SUBTREE


ALL_ATTRIBUTES: FrozenSet[str] = frozenset({"*"})
"""The special attribute selection ``*`` — all user attributes (§2.2)."""


def _freeze_attrs(attributes: Optional[Iterable[str]]) -> FrozenSet[str]:
    if attributes is None:
        return ALL_ATTRIBUTES
    frozen = frozenset(a.lower() for a in attributes)
    return frozen if frozen else ALL_ATTRIBUTES


@dataclass(frozen=True)
class SearchRequest:
    """An LDAP query: (base, scope, filter, attributes).

    Hashable and immutable so queries can key caches and replica
    metadata.  ``base`` and ``filter`` accept strings for convenience and
    are parsed on construction.

    >>> q = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)")
    >>> q.template
    '(sn=_)'
    """

    base: DN
    scope: Scope = Scope.SUB
    filter: Filter = MATCH_ALL
    attributes: FrozenSet[str] = ALL_ATTRIBUTES

    def __init__(
        self,
        base: Union[DN, str],
        scope: Scope = Scope.SUB,
        filter: Union[Filter, str] = MATCH_ALL,  # noqa: A002 - LDAP's own name
        attributes: Optional[Iterable[str]] = None,
    ):
        object.__setattr__(
            self, "base", base if isinstance(base, DN) else DN.parse(base)
        )
        object.__setattr__(self, "scope", Scope(scope))
        object.__setattr__(
            self,
            "filter",
            filter if isinstance(filter, Filter) else parse_filter(filter),
        )
        object.__setattr__(self, "attributes", _freeze_attrs(attributes))

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    @property
    def wants_all_attributes(self) -> bool:
        """True when the request selects all user attributes."""
        return "*" in self.attributes

    @property
    def template(self) -> str:
        """The paper's template string of this query's filter (§3.4.2)."""
        return template_of(self.filter)

    def in_scope(self, dn: DN) -> bool:
        """True when *dn* lies in the base/scope region of this query."""
        if self.scope is Scope.BASE:
            return dn == self.base
        if self.scope is Scope.ONE:
            return self.base.is_parent_of(dn)
        return self.base.is_ancestor_or_self(dn)

    def selects(self, entry: Entry) -> bool:
        """True when *entry* is in scope and satisfies the filter."""
        return self.in_scope(entry.dn) and matches(self.filter, entry)

    def project(self, entry: Entry) -> Entry:
        """Project *entry* onto the requested attribute set."""
        if self.wants_all_attributes:
            return entry.copy()
        return entry.project(self.attributes)

    def __hash__(self) -> int:
        # Requests key the stored-filter map, the routing memo, the QC
        # window, and the negative result caches — several probes per
        # answered query on the same object.  The generated dataclass
        # hash walks the whole filter tree each call; memoize it.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.base, self.scope, self.filter, self.attributes))
            object.__setattr__(self, "_hash", h)
        return h

    # ------------------------------------------------------------------
    # derived requests
    # ------------------------------------------------------------------
    def with_base(self, base: Union[DN, str]) -> "SearchRequest":
        """Copy with a different base (used when chasing referrals)."""
        return SearchRequest(base, self.scope, self.filter, self.attributes)

    def with_filter(self, flt: Union[Filter, str]) -> "SearchRequest":
        """Copy with a different filter (used by generalization)."""
        return SearchRequest(self.base, self.scope, flt, self.attributes)

    def __str__(self) -> str:
        attrs = ",".join(sorted(self.attributes))
        base = str(self.base) if not self.base.is_root else '""'
        return (
            f"search(base={base}, scope={self.scope.name}, "
            f"filter={self.filter}, attrs={attrs})"
        )
