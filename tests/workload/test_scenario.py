"""The soak load plan: diurnal waves, flash crowds, region renames."""

import pytest

from repro.workload import (
    DirectoryConfig,
    RegionRenamer,
    ScenarioConfig,
    SoakScenario,
    generate_directory,
)
from repro.server import DirectoryServer


class TestScenarioPlan:
    def test_deterministic_from_seed(self):
        a = SoakScenario(ScenarioConfig(seed=5))
        b = SoakScenario(ScenarioConfig(seed=5))
        assert a.ticks == b.ticks
        assert SoakScenario(ScenarioConfig(seed=6)).ticks != a.ticks

    def test_tick_count_matches_horizon(self):
        scenario = SoakScenario(
            ScenarioConfig(duration_hours=0.5, tick_ms=60_000.0)
        )
        assert len(scenario.ticks) == 30
        assert scenario.horizon_ms == 30 * 60_000.0
        assert [t.tick for t in scenario.ticks] == list(range(30))

    def test_diurnal_wave_trough_at_start(self):
        # The cosine wave troughs at t=0 and peaks half a period in:
        # across a full day the early mean must sit well below the
        # midday mean.
        cfg = ScenarioConfig(
            duration_hours=24.0, base_updates_per_tick=8.0, flash_crowds=0
        )
        scenario = SoakScenario(cfg)
        early = scenario.ticks[: len(scenario.ticks) // 6]
        midday = scenario.ticks[
            len(scenario.ticks) * 5 // 12 : len(scenario.ticks) * 7 // 12
        ]
        mean = lambda ts: sum(t.updates for t in ts) / len(ts)
        assert mean(early) < mean(midday)

    def test_flash_crowds_spike_queries(self):
        cfg = ScenarioConfig(
            flash_crowds=2, flash_crowd_queries=40, base_queries_per_tick=2
        )
        scenario = SoakScenario(cfg)
        crowd_ticks = [t for t in scenario.ticks if t.flash_crowd]
        assert len(crowd_ticks) >= cfg.flash_crowd_ticks
        assert all(t.queries >= cfg.flash_crowd_queries for t in crowd_ticks)
        calm = [t for t in scenario.ticks if not t.flash_crowd]
        assert all(t.queries == cfg.base_queries_per_tick for t in calm)

    def test_region_renames_scheduled(self):
        scenario = SoakScenario(ScenarioConfig(region_renames=2))
        assert sum(1 for t in scenario.ticks if t.region_rename) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration_hours=0)
        with pytest.raises(ValueError):
            ScenarioConfig(diurnal_amplitude=1.5)


class TestRegionRenamer:
    def test_wave_moves_a_division(self):
        directory = generate_directory(DirectoryConfig(employees=120, seed=3))
        master = DirectoryServer("M")
        master.add_naming_context(directory.suffix)
        master.load(directory.entries)
        renamer = RegionRenamer(directory, master, seed=3)
        moved = renamer.wave()
        assert moved > 0
        assert renamer.renamed_entries == moved
        # Another wave targets the next division round-robin.
        assert renamer.wave() > 0
        assert renamer.renamed_entries > moved
