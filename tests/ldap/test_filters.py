"""Tests for the filter AST: serialization, structure helpers, templates."""

import pytest

from repro.ldap import (
    And,
    Approx,
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    MATCH_ALL,
    Not,
    Or,
    Present,
    Substring,
    attributes_of,
    is_positive,
    simplify,
    template_of,
    to_dnf,
    to_nnf,
)
from repro.ldap.filters import escape_assertion_value, iter_predicates


class TestSerialization:
    def test_equality(self):
        assert str(Equality("sn", "Doe")) == "(sn=Doe)"

    def test_ordering(self):
        assert str(GreaterOrEqual("age", "30")) == "(age>=30)"
        assert str(LessOrEqual("age", "30")) == "(age<=30)"

    def test_approx(self):
        assert str(Approx("sn", "Doe")) == "(sn~=Doe)"

    def test_presence(self):
        assert str(Present("objectClass")) == "(objectClass=*)"
        assert str(MATCH_ALL) == "(objectClass=*)"

    def test_substring_forms(self):
        assert str(Substring("sn", initial="smi")) == "(sn=smi*)"
        assert str(Substring("sn", final="th")) == "(sn=*th)"
        assert str(Substring("sn", any_parts=("mit",))) == "(sn=*mit*)"
        assert (
            str(Substring("sn", initial="s", any_parts=("m",), final="h"))
            == "(sn=s*m*h)"
        )

    def test_boolean_nesting(self):
        f = And((Equality("sn", "Doe"), Or((Equality("a", "1"), Not(Equality("b", "2"))))))
        assert str(f) == "(&(sn=Doe)(|(a=1)(!(b=2))))"

    def test_escaping(self):
        assert escape_assertion_value("a*b(c)d\\e") == r"a\2ab\28c\29d\5ce"
        assert str(Equality("cn", "a*b")) == r"(cn=a\2ab)"


class TestConstruction:
    def test_operators(self):
        f = Equality("a", "1") & Equality("b", "2")
        assert isinstance(f, And)
        g = Equality("a", "1") | Equality("b", "2")
        assert isinstance(g, Or)
        n = ~Equality("a", "1")
        assert isinstance(n, Not)

    def test_empty_and_rejected(self):
        with pytest.raises(ValueError):
            And(())

    def test_empty_or_rejected(self):
        with pytest.raises(ValueError):
            Or(())

    def test_empty_substring_rejected(self):
        with pytest.raises(ValueError):
            Substring("sn")

    def test_filters_hashable(self):
        assert len({Equality("a", "1"), Equality("A", "1")}) == 2  # attr case kept


class TestStructureHelpers:
    def test_iter_predicates_order(self):
        f = And((Equality("a", "1"), Not(Equality("b", "2")), Or((Present("c"),))))
        attrs = [p.attr for p in iter_predicates(f)]
        assert attrs == ["a", "b", "c"]

    def test_attributes_of(self):
        f = And((Equality("SN", "x"), GreaterOrEqual("age", "3")))
        assert attributes_of(f) == frozenset({"sn", "age"})

    def test_is_positive(self):
        assert is_positive(And((Equality("a", "1"), Or((Equality("b", "2"),)))))
        assert not is_positive(And((Equality("a", "1"), Not(Equality("b", "2")))))


class TestSimplify:
    def test_unwraps_singletons(self):
        assert simplify(And((Equality("a", "1"),))) == Equality("a", "1")

    def test_flattens_nested(self):
        f = And((And((Equality("a", "1"), Equality("b", "2"))), Equality("c", "3")))
        assert simplify(f) == And(
            (Equality("a", "1"), Equality("b", "2"), Equality("c", "3"))
        )

    def test_dedupes(self):
        f = Or((Equality("a", "1"), Equality("a", "1")))
        assert simplify(f) == Equality("a", "1")

    def test_double_negation(self):
        assert simplify(Not(Not(Equality("a", "1")))) == Equality("a", "1")

    def test_leaf_unchanged(self):
        assert simplify(Equality("a", "1")) == Equality("a", "1")


class TestNnfDnf:
    def test_nnf_pushes_not_over_and(self):
        f = Not(And((Equality("a", "1"), Equality("b", "2"))))
        nnf = to_nnf(f)
        assert isinstance(nnf, Or)
        assert all(isinstance(c, Not) for c in nnf.children)

    def test_nnf_pushes_not_over_or(self):
        f = Not(Or((Equality("a", "1"), Equality("b", "2"))))
        nnf = to_nnf(f)
        assert isinstance(nnf, And)

    def test_nnf_cancels_double_negation(self):
        assert to_nnf(Not(Not(Equality("a", "1")))) == Equality("a", "1")

    def test_dnf_distributes(self):
        f = And((Or((Equality("a", "1"), Equality("b", "2"))), Equality("c", "3")))
        terms = to_dnf(f)
        assert len(terms) == 2
        assert all(len(t) == 2 for t in terms)

    def test_dnf_overflow_guard(self):
        # (a|b)^12 would blow past the cap
        big = And(
            tuple(
                Or((Equality(f"x{i}", "1"), Equality(f"y{i}", "2")))
                for i in range(12)
            )
        )
        with pytest.raises(OverflowError):
            to_dnf(big, max_terms=100)

    def test_dnf_single_literal(self):
        assert to_dnf(Equality("a", "1")) == ((Equality("a", "1"),),)


class TestTemplates:
    def test_leaf_templates(self):
        assert template_of(Equality("SN", "Doe")) == "(sn=_)"
        assert template_of(GreaterOrEqual("age", "3")) == "(age>=_)"
        assert template_of(LessOrEqual("age", "3")) == "(age<=_)"
        assert template_of(Approx("sn", "x")) == "(sn~=_)"
        assert template_of(Present("uid")) == "(uid=*)"

    def test_substring_shapes(self):
        assert template_of(Substring("sn", initial="smi")) == "(sn=_*)"
        assert template_of(Substring("serialNumber", initial="04", final="56")) == "(serialnumber=_*_)"
        assert template_of(Substring("sn", any_parts=("mid",))) == "(sn=*_*)"

    def test_and_children_sorted(self):
        a = And((Equality("sn", "x"), Equality("givenName", "y")))
        b = And((Equality("givenName", "p"), Equality("sn", "q")))
        assert template_of(a) == template_of(b) == "(&(givenname=_)(sn=_))"

    def test_not_template(self):
        assert template_of(Not(Equality("a", "1"))) == "(!(a=_))"

    def test_or_template(self):
        assert template_of(Or((Equality("b", "1"), Equality("a", "2")))) == "(|(a=_)(b=_))"
