"""Tests for changelog / tombstone / full-reload synchronization baselines."""

import pytest

from repro.ldap import (
    DN,
    Entry,
    ReSyncControl,
    Scope,
    SearchRequest,
    SyncAction,
    SyncMode,
)
from repro.server import Modification
from repro.sync import (
    Changelog,
    ChangelogProvider,
    FullReloadProvider,
    SyncProtocolError,
    SyncedContent,
    TombstoneProvider,
    TombstoneStore,
)


def person(name: str, dept: str = "42") -> Entry:
    return Entry(
        f"cn={name},c=us,o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": dept},
    )


class TestChangelogRecords:
    def test_records_accumulate(self, tiny_master):
        log = Changelog(tiny_master)
        tiny_master.add(person("E4"))
        tiny_master.modify("cn=E4,c=us,o=xyz", [Modification.replace("title", "X")])
        tiny_master.delete("cn=E4,c=us,o=xyz")
        assert [r.op.value for r in log.records] == ["add", "modify", "delete"]
        assert log.history_size() == 3

    def test_since_filters_by_csn(self, tiny_master):
        log = Changelog(tiny_master)
        tiny_master.add(person("E4"))
        mark = tiny_master.current_csn
        tiny_master.add(person("E5"))
        assert len(log.since(mark)) == 1

    def test_modify_records_changed_attrs_only(self, tiny_master):
        log = Changelog(tiny_master)
        mods = [Modification.replace("title", "X")]
        tiny_master.modify("cn=E1,c=us,o=xyz", mods)
        assert log.records[-1].modifications == tuple(mods)


class TestChangelogProvider:
    def test_basic_convergence(self, tiny_master, dept42):
        provider = ChangelogProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.add(person("E4"))
        tiny_master.delete("cn=E1,c=us,o=xyz")
        tiny_master.modify("cn=E2,c=us,o=xyz", [Modification.replace("title", "X")])
        content.poll(provider)
        assert content.matches_master(tiny_master)

    def test_all_deleted_dns_transmitted(self, tiny_master, dept42):
        """The paper's critique: deletes are sent even for entries that
        were never in the content."""
        tiny_master.add(person("Outsider", dept="99"))
        provider = ChangelogProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.delete("cn=Outsider,c=us,o=xyz")  # was never in content
        r = content.poll(provider)
        assert [u.action for u in r.updates] == [SyncAction.DELETE]

    def test_conservative_delete_for_modified_out(self, tiny_master, dept42):
        provider = ChangelogProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify(
            "cn=E1,c=us,o=xyz", [Modification.replace("departmentNumber", "99")]
        )
        r = content.poll(provider)
        assert [u.action for u in r.updates] == [SyncAction.DELETE]
        assert content.matches_master(tiny_master)

    def test_disjoint_attribute_modify_pruned(self, tiny_master, dept42):
        """A modify touching attributes outside the filter cannot change
        membership; a never-matching entry produces no PDU at all."""
        tiny_master.add(person("Outsider", dept="99"))
        provider = ChangelogProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify(
            "cn=Outsider,c=us,o=xyz", [Modification.replace("title", "Boss")]
        )
        r = content.poll(provider)
        assert r.updates == []

    def test_modify_then_delete_converges(self, tiny_master, dept42):
        """The paper's hard case for changelogs: modified out of content,
        then deleted.  Convergence survives via the unconditional delete."""
        provider = ChangelogProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify(
            "cn=E1,c=us,o=xyz", [Modification.replace("departmentNumber", "99")]
        )
        tiny_master.delete("cn=E1,c=us,o=xyz")
        content.poll(provider)
        assert content.matches_master(tiny_master)

    def test_rename_converges(self, tiny_master, dept42):
        provider = ChangelogProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify_dn("cn=E3,c=us,o=xyz", new_rdn="cn=E5")
        content.poll(provider)
        assert content.matches_master(tiny_master)

    def test_out_of_scope_delete_not_sent(self, tiny_master):
        provider = ChangelogProvider(tiny_master)
        narrow = SearchRequest("cn=E1,c=us,o=xyz", Scope.BASE, "(objectClass=*)")
        content = SyncedContent(narrow)
        content.poll(provider)
        tiny_master.delete("cn=E2,c=us,o=xyz")  # outside the BASE region
        r = content.poll(provider)
        assert r.updates == []

    def test_poll_only(self, tiny_master, dept42):
        provider = ChangelogProvider(tiny_master)
        with pytest.raises(SyncProtocolError):
            provider.handle(dept42, ReSyncControl(mode=SyncMode.PERSIST))

    def test_sync_end_accepted(self, tiny_master, dept42):
        provider = ChangelogProvider(tiny_master)
        r = provider.handle(dept42, ReSyncControl(mode=SyncMode.SYNC_END))
        assert r.updates == [] and r.cookie is None


class TestTombstoneStore:
    def test_tombstones_record_deletes(self, tiny_master):
        store = TombstoneStore(tiny_master)
        tiny_master.delete("cn=E1,c=us,o=xyz")
        assert store.deleted_since(0) == [DN.parse("cn=E1,c=us,o=xyz")]
        assert store.history_size() == 1

    def test_change_csn_tracked(self, tiny_master):
        store = TombstoneStore(tiny_master)
        mark = tiny_master.current_csn
        tiny_master.modify("cn=E1,c=us,o=xyz", [Modification.replace("title", "X")])
        assert DN.parse("cn=E1,c=us,o=xyz") in store.changed_since(mark)

    def test_rename_leaves_tombstone_for_old_dn(self, tiny_master):
        store = TombstoneStore(tiny_master)
        tiny_master.modify_dn("cn=E3,c=us,o=xyz", new_rdn="cn=E5")
        assert DN.parse("cn=E3,c=us,o=xyz") in store.deleted_since(0)


class TestTombstoneProvider:
    def test_basic_convergence(self, tiny_master, dept42):
        provider = TombstoneProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.add(person("E4"))
        tiny_master.delete("cn=E1,c=us,o=xyz")
        tiny_master.modify("cn=E2,c=us,o=xyz", [Modification.replace("title", "X")])
        content.poll(provider)
        assert content.matches_master(tiny_master)

    def test_conservative_delete_for_changed_nonmatching(self, tiny_master, dept42):
        """Tombstones cannot prune by changed attributes: ANY changed
        in-scope entry that does not match now costs a delete PDU."""
        tiny_master.add(person("Outsider", dept="99"))
        provider = TombstoneProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify(
            "cn=Outsider,c=us,o=xyz", [Modification.replace("title", "Boss")]
        )
        r = content.poll(provider)
        assert [u.action for u in r.updates] == [SyncAction.DELETE]

    def test_modify_then_delete_converges(self, tiny_master, dept42):
        provider = TombstoneProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify(
            "cn=E1,c=us,o=xyz", [Modification.replace("departmentNumber", "99")]
        )
        tiny_master.delete("cn=E1,c=us,o=xyz")
        content.poll(provider)
        assert content.matches_master(tiny_master)

    def test_rename_converges(self, tiny_master, dept42):
        provider = TombstoneProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify_dn("cn=E3,c=us,o=xyz", new_rdn="cn=E5")
        content.poll(provider)
        assert content.matches_master(tiny_master)


class TestFullReload:
    def test_every_poll_sends_everything(self, tiny_master, dept42):
        provider = FullReloadProvider(tiny_master)
        content = SyncedContent(dept42)
        r1 = content.poll(provider)
        r2 = content.poll(provider)
        assert len(r1.updates) == len(r2.updates) == 3
        assert all(u.action is SyncAction.ADD for u in r2.updates)

    def test_convergence_via_retain_semantics(self, tiny_master, dept42):
        provider = FullReloadProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.delete("cn=E1,c=us,o=xyz")
        tiny_master.modify(
            "cn=E2,c=us,o=xyz", [Modification.replace("departmentNumber", "99")]
        )
        content.poll(provider)
        assert content.matches_master(tiny_master)


class TestTrafficComparison:
    def test_resync_cheapest_on_churn(self, tiny_master, dept42):
        """§5.2: ReSync sends the minimal update set; the baselines pay
        extra PDUs (conservative deletes, retains, or full reloads)."""
        from repro.sync import ResyncProvider

        totals = {}
        for name, factory in (
            ("resync", ResyncProvider),
            ("changelog", ChangelogProvider),
            ("tombstone", TombstoneProvider),
            ("reload", FullReloadProvider),
        ):
            # fresh identical master per mechanism
            from repro.server import DirectoryServer

            m = DirectoryServer("M")
            m.add_naming_context("o=xyz")
            m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
            m.add(Entry("c=us,o=xyz", {"objectClass": ["country"], "c": "us"}))
            for i in range(10):
                m.add(person(f"P{i}", dept="42" if i < 5 else "99"))
            provider = factory(m)
            content = SyncedContent(dept42)
            content.poll(provider)
            # churn: one in-content modify, one out-of-content modify,
            # one out-of-content delete
            m.modify("cn=P0,c=us,o=xyz", [Modification.replace("title", "X")])
            m.modify("cn=P7,c=us,o=xyz", [Modification.replace("title", "Y")])
            m.delete("cn=P8,c=us,o=xyz")
            r = content.poll(provider)
            totals[name] = len(r.updates)
            assert content.matches_master(m)
        assert totals["resync"] <= totals["changelog"]
        assert totals["resync"] <= totals["tombstone"]
        assert totals["resync"] < totals["reload"]
