"""Sampling distributions for workload generation.

The paper's workloads come from a real two-day trace; what matters to
the replication results is their *shape*: non-uniform popularity across
semantic regions (some departments/sites are hot) and temporal locality
(recently asked queries recur).  Both are standard artifacts of access
traces and are modelled with the usual tools:

* :class:`ZipfSampler` — power-law popularity over a finite population,
* :class:`TemporalMixer` — with probability ``p`` re-issue a query from
  a recency window, else draw fresh (the LRU-stack model of temporal
  locality).

Deterministic given a seed; no global random state is touched.
"""

from __future__ import annotations

import bisect
import random
from collections import deque
from typing import Callable, Deque, Generic, List, Optional, Sequence, TypeVar

__all__ = ["ZipfSampler", "TemporalMixer", "WeightedChoice"]

T = TypeVar("T")


class ZipfSampler(Generic[T]):
    """Zipf(s) popularity over a fixed item sequence.

    Item *i* (0-based rank) has weight ``1 / (i+1)**exponent``.  The
    rank order is shuffled once at construction so that popularity is
    decoupled from the natural ordering of the population.
    """

    def __init__(
        self,
        items: Sequence[T],
        exponent: float = 1.0,
        rng: Optional[random.Random] = None,
        shuffle: bool = True,
    ):
        if not items:
            raise ValueError("ZipfSampler needs a non-empty population")
        self._rng = rng if rng is not None else random.Random(0)
        self._items: List[T] = list(items)
        if shuffle:
            self._rng.shuffle(self._items)
        weights = [1.0 / (rank + 1) ** exponent for rank in range(len(self._items))]
        total = 0.0
        self._cumulative: List[float] = []
        for w in weights:
            total += w
            self._cumulative.append(total)
        self._total = total

    def sample(self) -> T:
        """Draw one item by Zipf popularity."""
        u = self._rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, u)
        return self._items[min(index, len(self._items) - 1)]

    @property
    def population(self) -> List[T]:
        """Items in popularity-rank order (hottest first)."""
        return list(self._items)


class WeightedChoice(Generic[T]):
    """Categorical sampling with explicit weights (Table 1's query mix)."""

    def __init__(
        self,
        items: Sequence[T],
        weights: Sequence[float],
        rng: Optional[random.Random] = None,
    ):
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must be equal-length, non-empty")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self._rng = rng if rng is not None else random.Random(0)
        self._items = list(items)
        self._cumulative: List[float] = []
        total = 0.0
        for w in weights:
            total += w
            self._cumulative.append(total)
        self._total = total

    def sample(self) -> T:
        u = self._rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, u)
        return self._items[min(index, len(self._items) - 1)]


class TemporalMixer(Generic[T]):
    """Re-reference model: repeat a recent draw with probability *p*.

    Feeding every emitted item back into a bounded recency window makes
    the output stream exhibit the temporal locality that drives the
    cached-user-query curves of Figures 8/9.
    """

    def __init__(
        self,
        fresh: Callable[[], T],
        repeat_probability: float = 0.2,
        window: int = 100,
        rng: Optional[random.Random] = None,
    ):
        if not 0.0 <= repeat_probability <= 1.0:
            raise ValueError("repeat_probability must be within [0, 1]")
        self._fresh = fresh
        self._p = repeat_probability
        self._window: Deque[T] = deque(maxlen=window)
        self._rng = rng if rng is not None else random.Random(0)

    def sample(self) -> T:
        if self._window and self._rng.random() < self._p:
            item = self._rng.choice(list(self._window))
        else:
            item = self._fresh()
        self._window.append(item)
        return item
