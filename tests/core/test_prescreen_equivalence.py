"""Prescreened answering must be byte-identical to ``amq=False``.

``FilterReplica(amq=False)`` bypasses every docs/ROUTING.md §10
prescreen — the routing index's guard-atom AMQ, the content indexes'
equality/DN AMQ, and both negative result caches — while keeping the
routed machinery in place.  The properties drive both configurations
through identical stored-filter sets, query streams, and cache
feedback (and, for the sync-path property, identical ``FaultyNetwork``
fault schedules) and require identical answers: status, entry list
*including order*, ``answered_by`` attribution, and referrals.

The AMQ prescreens are forced on even at tiny populations by
``amq_min_population=0`` in the structure-level properties, so the
tests exercise the prescreen code path rather than the inactive-
below-threshold shortcut.
"""

from hypothesis import given, settings, strategies as st

from repro.core import FilterReplica
from repro.core.routing import ContainmentIndex
from repro.ldap import (
    And,
    DN,
    Entry,
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Scope,
    SearchRequest,
    Substring,
)
from repro.server import DirectoryServer
from repro.server.faults import FaultPlan, FaultSpec, FaultyNetwork
from repro.server.network import TransportError
from repro.server.indexes import ContentIndex
from repro.sync import ResyncProvider
from repro.sync.consumer import SyncedContent

_ATTRS = ["sn", "uid", "l"]
_VALUES = ["a", "ab", "abc", "b", "ba", "c"]
_attr = st.sampled_from(_ATTRS)
_value = st.sampled_from(_VALUES)

_leaves = st.one_of(
    st.builds(Equality, _attr, _value),
    st.builds(GreaterOrEqual, _attr, _value),
    st.builds(LessOrEqual, _attr, _value),
    st.builds(Present, _attr),
    st.builds(lambda a, v: Substring(a, initial=v), _attr, _value),
    st.builds(lambda a, v: Substring(a, final=v), _attr, _value),
)

_filters = st.recursive(
    _leaves,
    lambda kids: st.one_of(
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        kids.map(Not),
    ),
    max_leaves=5,
)

_BASES = ["", "o=xyz", "c=us,o=xyz"]
_requests = st.builds(
    SearchRequest,
    st.sampled_from(_BASES),
    st.sampled_from([Scope.SUB, Scope.ONE, Scope.BASE]),
    _filters,
)

_DN_POOL = [
    "o=xyz",
    "c=us,o=xyz",
    "cn=p0,c=us,o=xyz",
    "cn=p1,c=us,o=xyz",
    "cn=p2,o=xyz",
    "cn=p3,o=xyz",
]

_entry_values = st.lists(_value, max_size=2)
_entries = st.builds(
    lambda dn, svals, uvals, lvals: Entry(
        DN.parse(dn),
        {
            "objectClass": ["person"],
            "cn": "x",
            **({"sn": svals} if svals else {}),
            **({"uid": uvals} if uvals else {}),
            **({"l": lvals} if lvals else {}),
        },
    ),
    st.sampled_from(_DN_POOL),
    _entry_values,
    _entry_values,
    _entry_values,
)


def _entry_fp(entry):
    return (
        str(entry.dn),
        sorted((n, tuple(entry.get(n))) for n in entry.attribute_names()),
    )


def _answer_fp(answer):
    return (
        answer.status,
        [_entry_fp(e) for e in answer.entries],
        answer.answered_by,
        answer.referrals,
    )


# ----------------------------------------------------------------------
# replica-level property: answers identical with prescreens on vs off
# ----------------------------------------------------------------------
def _drive(amq, directory, stored_requests, queries, capacity, unions, policy):
    replica = FilterReplica(
        "r",
        cache_capacity=capacity,
        compose_unions=unions,
        cache_policy=policy,
        amq=amq,
    )
    for request in stored_requests:
        replica.load_directly(request, [e for e in directory if request.selects(e)])
    outcomes = []
    for query in queries:
        answer = replica.answer(query)
        outcomes.append(_answer_fp(answer))
        if not answer.is_hit:
            replica.observe_miss(query, [e for e in directory if query.selects(e)])
    return outcomes


@settings(max_examples=80, deadline=None)
@given(
    st.lists(_entries, min_size=1, max_size=8, unique_by=lambda e: str(e.dn)),
    st.lists(_requests, min_size=1, max_size=6),
    st.lists(_requests, min_size=1, max_size=12),
    st.sampled_from([0, 3]),
    st.booleans(),
    st.sampled_from(["fifo", "lru"]),
)
def test_prescreened_answers_equal_unprescreened(
    directory, stored_requests, queries, capacity, unions, policy
):
    # Repeat every query so the negative caches answer the second pass.
    stream = list(queries) + list(queries)
    on = _drive(True, directory, stored_requests, stream, capacity, unions, policy)
    off = _drive(False, directory, stored_requests, stream, capacity, unions, policy)
    assert on == off


# ----------------------------------------------------------------------
# routing-index property: candidate lists identical, prescreen forced on
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    st.lists(_requests, min_size=1, max_size=10),
    st.lists(_requests, min_size=1, max_size=10),
    st.lists(st.integers(min_value=0, max_value=9), max_size=4),
)
def test_containment_index_candidates_identical(stored, probes, removals):
    with_amq = ContainmentIndex(amq=True, amq_min_population=0)
    without = ContainmentIndex(amq=False)
    for request in stored:
        with_amq.add(request, handle=request)
        without.add(request, handle=request)
    for i in removals:
        if i < len(stored):
            with_amq.remove(stored[i])
            without.remove(stored[i])
    for probe in probes:
        got = [c.request for c in with_amq.candidates(probe)]
        want = [c.request for c in without.candidates(probe)]
        assert got == want


# ----------------------------------------------------------------------
# content-index property: evaluation identical through adds and deletes
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.lists(_entries, min_size=1, max_size=8, unique_by=lambda e: str(e.dn)),
    st.lists(_requests, min_size=1, max_size=8),
    st.lists(st.integers(min_value=0, max_value=7), max_size=3),
)
def test_content_index_candidates_sound(directory, queries, deletions):
    entries = {e.dn: e for e in directory}
    on = ContentIndex(dict(entries), amq=True)
    off = ContentIndex(dict(entries), amq=False)
    live = dict(entries)
    for query in queries:  # build some equality indexes (and the AMQ)
        on.candidates(query)
        off.candidates(query)
    for i in deletions:
        dns = list(live)
        if i < len(dns):
            dn = dns[i]
            old = live.pop(dn)
            on.discard(dn, old)
            off.discard(dn, old)
    for query in queries:
        got = on.candidates(query)
        want = off.candidates(query)
        if got is None or want is None:
            assert got == want
            continue
        # Both are candidate supersets; after re-verification against
        # the live content they must select the same entries.
        def verify(cands):
            return {
                dn
                for dn in cands
                if dn in live and query.in_scope(dn) and query.selects(live[dn])
            }

        assert verify(got) == verify(want)


# ----------------------------------------------------------------------
# sync path: prescreens on vs off under injected faults
# ----------------------------------------------------------------------
def _person(name, dept):
    return Entry(
        f"cn={name},o=xyz",
        {
            "objectClass": ["person"],
            "cn": name,
            "sn": "T",
            "departmentNumber": dept,
        },
    )


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**16),
    st.floats(min_value=0.0, max_value=0.4),
    st.lists(_requests, min_size=1, max_size=8),
)
def test_prescreened_answers_equal_under_faulty_sync(seed, rate, queries):
    """Same fault schedule, same polls → byte-identical answers."""
    stored = [
        SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)"),
        SearchRequest("o=xyz", Scope.SUB, "(sn=T)"),
    ]

    def drive(amq):
        master = DirectoryServer("M")
        master.add_naming_context("o=xyz")
        master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
        for i in range(30):
            master.add(_person(f"P{i}", "42" if i % 2 == 0 else "99"))
        provider = ResyncProvider(master)
        net = FaultyNetwork(FaultPlan(FaultSpec.uniform(rate), seed=seed))
        replica = FilterReplica("r", network=net, cache_capacity=4, amq=amq)
        for request in stored:
            content = SyncedContent(request, network=net, amq=amq)
            try:
                content.resilient_poll(provider)
            except TransportError:
                # The schedule exhausted the retry budget — identical on
                # both drives (same seed); finish the load fault-free.
                net.heal()
                content.resilient_poll(provider)
            replica.load_directly(request, list(content.entries.values()))
        outcomes = []
        for query in queries + [stored[0], stored[1]] + queries:
            answer = replica.answer(query)
            outcomes.append(_answer_fp(answer))
            if not answer.is_hit:
                replica.observe_miss(query, master.search(query).entries)
        return outcomes

    assert drive(True) == drive(False)


# ----------------------------------------------------------------------
# negative-cache regressions
# ----------------------------------------------------------------------
def test_stored_negative_cache_invalidated_by_add_filter():
    """A recorded miss must not survive a filter that now contains it."""
    replica = FilterReplica("r")
    query = SearchRequest("o=xyz", Scope.SUB, "(sn=ab)")
    assert not replica.answer(query).is_hit
    assert not replica.answer(query).is_hit  # negcache path, still a miss
    assert replica._negative is not None and replica._negative.hits >= 1
    wide = SearchRequest("o=xyz", Scope.SUB, "(sn=ab)")
    replica.load_directly(
        wide,
        [
            Entry(
                "cn=s,o=xyz",
                {"objectClass": ["person"], "cn": "s", "sn": ["ab"]},
            )
        ],
    )
    answer = replica.answer(query)
    assert answer.is_hit
    assert [str(e.dn) for e in answer.entries] == ["cn=s,o=xyz"]


def test_query_cache_negative_cache_invalidated_by_insert():
    replica = FilterReplica("r", cache_capacity=4)
    narrow = SearchRequest("o=xyz", Scope.SUB, "(sn=ab)")
    assert not replica.answer(narrow).is_hit
    assert not replica.answer(narrow).is_hit  # miss memoized
    wide = SearchRequest("o=xyz", Scope.SUB, "(sn=a*)")
    replica.observe_miss(
        wide,
        [
            Entry(
                "cn=s,o=xyz",
                {"objectClass": ["person"], "cn": "s", "sn": ["ab"]},
            )
        ],
    )
    answer = replica.answer(narrow)
    assert answer.is_hit and answer.answered_by.startswith("cache:")


def test_negative_cache_counters_surface_in_metrics():
    replica = FilterReplica("r", cache_capacity=4)
    miss = SearchRequest("o=xyz", Scope.SUB, "(uid=zzz)")
    replica.answer(miss)
    replica.answer(miss)
    replica.sync_amq_metrics()
    hits = replica.metrics.counter("core.qc.negcache.hits", site="stored").value
    lookups = replica.metrics.counter(
        "core.qc.negcache.lookups", site="stored"
    ).value
    assert hits >= 1
    assert lookups >= 2
