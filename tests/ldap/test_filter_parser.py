"""Tests for the RFC 2254 parser, incl. a property-based round trip."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap import (
    And,
    Approx,
    Equality,
    FilterParseError,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
    parse_filter,
)


class TestLeafParsing:
    def test_equality(self):
        assert parse_filter("(sn=Doe)") == Equality("sn", "Doe")

    def test_ge(self):
        assert parse_filter("(age>=30)") == GreaterOrEqual("age", "30")

    def test_le(self):
        assert parse_filter("(age<=30)") == LessOrEqual("age", "30")

    def test_approx(self):
        assert parse_filter("(sn~=doe)") == Approx("sn", "doe")

    def test_presence(self):
        assert parse_filter("(objectclass=*)") == Present("objectclass")

    def test_substring_initial(self):
        assert parse_filter("(sn=smi*)") == Substring("sn", initial="smi")

    def test_substring_final(self):
        assert parse_filter("(sn=*th)") == Substring("sn", final="th")

    def test_substring_any(self):
        assert parse_filter("(sn=*mid*)") == Substring("sn", any_parts=("mid",))

    def test_substring_full(self):
        assert parse_filter("(sn=a*b*c)") == Substring(
            "sn", initial="a", any_parts=("b",), final="c"
        )

    def test_substring_collapses_empty_middles(self):
        assert parse_filter("(sn=a**c)") == Substring("sn", initial="a", final="c")

    def test_value_with_spaces(self):
        assert parse_filter("(cn=John Doe)") == Equality("cn", "John Doe")

    def test_attribute_with_options_chars(self):
        assert parse_filter("(x-attr-1=v)") == Equality("x-attr-1", "v")


class TestEscapes:
    def test_escaped_star_is_literal(self):
        assert parse_filter(r"(cn=a\2ab)") == Equality("cn", "a*b")

    def test_escaped_parens(self):
        assert parse_filter(r"(cn=\28x\29)") == Equality("cn", "(x)")

    def test_escaped_backslash(self):
        assert parse_filter(r"(cn=a\5cb)") == Equality("cn", "a\\b")

    def test_escape_in_substring_component(self):
        f = parse_filter(r"(cn=a\2a*b)")
        assert f == Substring("cn", initial="a*", final="b")

    def test_truncated_escape_rejected(self):
        with pytest.raises(FilterParseError):
            parse_filter(r"(cn=a\2)")

    def test_bad_hex_rejected(self):
        with pytest.raises(FilterParseError):
            parse_filter(r"(cn=a\zz)")


class TestBooleanParsing:
    def test_and(self):
        f = parse_filter("(&(sn=Doe)(givenName=John))")
        assert f == And((Equality("sn", "Doe"), Equality("givenName", "John")))

    def test_or(self):
        f = parse_filter("(|(a=1)(b=2))")
        assert f == Or((Equality("a", "1"), Equality("b", "2")))

    def test_not(self):
        assert parse_filter("(!(a=1))") == Not(Equality("a", "1"))

    def test_deep_nesting(self):
        f = parse_filter("(&(|(a=1)(!(b=2)))(c>=3))")
        assert isinstance(f, And)
        assert isinstance(f.children[0], Or)

    def test_three_way_and(self):
        f = parse_filter("(&(a=1)(b=2)(c=3))")
        assert len(f.children) == 3

    def test_whitespace_tolerated_around(self):
        assert parse_filter("  (a=1) ") == Equality("a", "1")


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(",
            "()",
            "(a=1",
            "(a=1))",
            "(&)",
            "(|)",
            "(!)",
            "(=x)",
            "(a 1)",
            "(a=1)(b=2)",
            "(&(a=1)",
            "(a=(b))",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(FilterParseError):
            parse_filter(bad)

    def test_error_carries_position(self):
        try:
            parse_filter("(a=1")
        except FilterParseError as exc:
            assert exc.position >= 0
            assert exc.text == "(a=1"


# ----------------------------------------------------------------------
# property-based round trip over randomly generated ASTs
# ----------------------------------------------------------------------
_attr = st.sampled_from(["sn", "cn", "uid", "age", "serialNumber"])
_value = st.text(
    alphabet=st.characters(blacklist_characters="\0", min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=10,
)
_component = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, blacklist_characters="\0"),
    min_size=1,
    max_size=5,
)


def _leaves():
    return st.one_of(
        st.builds(Equality, _attr, _value),
        st.builds(GreaterOrEqual, _attr, _value),
        st.builds(LessOrEqual, _attr, _value),
        st.builds(Approx, _attr, _value),
        st.builds(Present, _attr),
        st.builds(
            Substring,
            _attr,
            _component,
            st.lists(_component, max_size=2).map(tuple),
            _component,
        ),
    )


_filters = st.recursive(
    _leaves(),
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(children, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        children.map(Not),
    ),
    max_leaves=8,
)


@given(_filters)
def test_parse_str_roundtrip(flt):
    assert parse_filter(str(flt)) == flt
