#!/usr/bin/env python3
"""Figure 2 walkthrough: distributed operation processing via referrals.

Builds the paper's three-server partition of the ``o=xyz`` namespace,
sends a subtree search to the *wrong* server, and narrates the four
round trips the referral mechanism costs — then contrasts the single
round trip of a replica hit.

Run:  python examples/distributed_search.py
"""

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DistributedDirectory, LdapClient


def main() -> None:
    dist = DistributedDirectory()
    host_a = dist.add_server("hostA", "o=xyz")
    host_b = dist.add_server(
        "hostB", "ou=research,c=us,o=xyz", default_referral="ldap://hostA"
    )
    host_c = dist.add_server("hostC", "c=in,o=xyz", default_referral="ldap://hostA")

    host_a.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    host_a.add(Entry("c=us,o=xyz", {"objectClass": ["country"], "c": "us"}))
    host_a.add(
        Entry(
            "cn=Fred Jones,c=us,o=xyz",
            {"objectClass": ["person"], "cn": "Fred Jones", "sn": "Jones"},
        )
    )
    dist.add_referral("hostA", "ou=research,c=us,o=xyz", "hostB")
    dist.add_referral("hostA", "c=in,o=xyz", "hostC")

    host_b.add(
        Entry(
            "ou=research,c=us,o=xyz",
            {"objectClass": ["organizationalUnit"], "ou": "research"},
        )
    )
    host_b.add(
        Entry(
            "cn=John Doe,ou=research,c=us,o=xyz",
            {"objectClass": ["inetOrgPerson"], "cn": "John Doe", "sn": "Doe"},
        )
    )
    host_c.add(Entry("c=in,o=xyz", {"objectClass": ["country"], "c": "in"}))
    host_c.add(
        Entry(
            "cn=Ravi Kumar,c=in,o=xyz",
            {"objectClass": ["person"], "cn": "Ravi Kumar", "sn": "Kumar"},
        )
    )

    print("topology:")
    for server in dist.servers:
        contexts = ", ".join(str(c.suffix) for c in server.naming_contexts)
        print(f"  {server.url:<14} holds [{contexts}]")

    request = SearchRequest("o=xyz", Scope.SUB)
    print(f"\nclient sends to hostB: {request}")

    client = LdapClient(dist.network)
    result = client.search("ldap://hostB", request)

    print("\nround trips:")
    for i, url in enumerate(result.servers_contacted, start=1):
        note = ""
        if i == 1:
            note = "(does not hold o=xyz -> default referral to hostA)"
        elif i == 2:
            note = "(target found; returns entries + 2 continuation refs)"
        else:
            note = "(continuation with modified base)"
        print(f"  {i}. {url} {note}")

    print(f"\ntotal round trips: {result.round_trips} (the paper's Figure 2: 4)")
    print(f"entries returned: {len(result.entries)}")
    for entry in sorted(result.entries, key=lambda e: str(e.dn)):
        print(f"  {entry.dn}")

    # The contrast a replica provides: a local hit is one round trip.
    local = client.search("ldap://hostC", SearchRequest("c=in,o=xyz", Scope.SUB))
    print(
        f"\na query answered where its data lives takes "
        f"{local.round_trips} round trip — the asymmetry partial "
        f"replication exploits (§3)."
    )


if __name__ == "__main__":
    main()
