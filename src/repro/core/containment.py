"""LDAP query containment — the ``QC`` algorithm of §4.

A query ``Q`` is semantically contained in a stored query ``Qs`` when:

(i)   the region defined by Q's base and scope falls completely inside
      the corresponding region of Qs,
(ii)  Q's requested attributes are a subset of Qs's, and
(iii) Q's filter is more restrictive than Qs's filter.

Scope values are the integers BASE=0, SINGLE LEVEL=1, SUBTREE=2, as the
paper's pseudocode assumes.  Region containment enumerates the three
ways Qs's region can cover Q's:

* same base, Qs's scope at least as deep,
* Qs is a SUBTREE search over an ancestor(-or-self) of Q's base,
* Qs is a SINGLE LEVEL search on the parent of a BASE search's target.

Condition (iii) delegates to
:func:`repro.core.filter_containment.filter_contained_in` — sound and
template-friendly — so ``query_contained_in(Q, Qs) == True`` guarantees
``answer(Q) ⊆ answer(Qs)`` on every directory (property-tested).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from ..ldap.attributes import AttributeRegistry
from ..ldap.query import Scope, SearchRequest
from .filter_containment import filter_contained_in

__all__ = ["region_contained_in", "attributes_contained_in", "query_contained_in"]


def region_contained_in(q: SearchRequest, qs: SearchRequest) -> bool:
    """True when (base, scope) of *q* lies inside the region of *qs*.

    Transcription of the region part of the paper's ``QC`` pseudocode::

        if (bS = b & sS >= s)            -> NEXT
        else if (!issuffix(bS, b))       -> FALSE
        if (sS = SUBTREE)                -> NEXT
        else if ((sS > s) & isparent(bS, b)) -> NEXT
        FALSE

    Deviation from the paper (found by property testing): with equal
    bases the paper's ``sS >= s`` admits BASE ⊆ SINGLE LEVEL, but a
    single-level search does *not* return the base entry itself
    (RFC 2251 §4.5.1), so region(BASE) ⊄ region(ONE).  The correct
    same-base rule is ``sS == s or sS == SUBTREE``.
    """
    b, s = q.base, q.scope
    bs, ss = qs.base, qs.scope
    if bs == b:
        return ss == s or ss is Scope.SUB
    if not bs.is_suffix_of(b):
        return False
    if ss is Scope.SUB:
        return True
    return ss > s and bs.is_parent_of(b)


def attributes_contained_in(q: SearchRequest, qs: SearchRequest) -> bool:
    """Condition (ii): A ⊆ As, with ``*`` meaning all user attributes."""
    if qs.wants_all_attributes:
        return True
    if q.wants_all_attributes:
        return False
    return q.attributes <= qs.attributes


def query_contained_in(
    q: SearchRequest,
    qs: SearchRequest,
    registry: Optional[AttributeRegistry] = None,
) -> bool:
    """The full ``QC(Q, Qs)`` check: region, attributes and filter.

    Results under the default attribute registry are memoized — queries
    and requests are immutable, and temporal locality in workloads makes
    repeat checks the common case.
    """
    if registry is None:
        return _query_contained_in_cached(q, qs)
    if not region_contained_in(q, qs):
        return False
    if not attributes_contained_in(q, qs):
        return False
    return filter_contained_in(q.filter, qs.filter, registry)


@lru_cache(maxsize=262_144)
def _query_contained_in_cached(q: SearchRequest, qs: SearchRequest) -> bool:
    if not region_contained_in(q, qs):
        return False
    if not attributes_contained_in(q, qs):
        return False
    return filter_contained_in(q.filter, qs.filter, None)
