"""Pipelined/batched transport vs the synchronous oracle.

The PR 4/PR 8 playbook, applied to the transport (docs/TRANSPORT.md
§6): the pipelined network is an *optimization*, so its observable
behaviour must be provably tied to the historical synchronous path.

* **Byte identity** (no overflow): for any update schedule, the
  concatenated encoded notification stream a persist session receives
  over the pipelined transport is byte-for-byte the stream the
  synchronous oracle delivers, and the applied contents match.
* **Content equivalence** (with overflow): past the high-water mark
  the queue coalesces per DN — the stream shrinks, but the applied
  content still converges to the oracle's.
* **Fault equivalence**: same seeded fault schedule in both modes →
  after heal, both converge to the same master content.
* **Determinism**: same seed → identical scheduler event order, clock,
  metrics and delivered bytes across two in-process runs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ldap import DN, Entry, Scope, SearchRequest
from repro.ldap.ber import encode_sync_update
from repro.server import (
    DirectoryServer,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
    Modification,
    SimulatedNetwork,
)
from repro.sync import (
    BatchConfig,
    ResilientConsumer,
    ResyncProvider,
    RetryPolicy,
    SyncedContent,
)

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")
NAMES = [f"P{i}" for i in range(6)]


def person(name: str, dept: str = "42", sn: str = "T") -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": sn, "departmentNumber": dept},
    )


def build_master() -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i, name in enumerate(NAMES):
        master.add(person(name, dept="42" if i % 2 == 0 else "99"))
    return master


def mutate(master: DirectoryServer, step: int) -> None:
    name = NAMES[step % len(NAMES)]
    dn = f"cn={name},o=xyz"
    kind = step % 5
    if kind == 0:
        master.modify(dn, [Modification.replace("sn", f"S{step}")])
    elif kind == 1:
        master.modify(dn, [Modification.replace("departmentNumber", "42")])
    elif kind == 2:
        master.modify(dn, [Modification.replace("departmentNumber", "99")])
    elif kind == 3:
        master.delete(dn)
        master.add(person(name))
    else:
        extra = f"cn=X{step},o=xyz"
        if DN.parse(extra) in master.store:  # Hypothesis may repeat a step
            master.modify(extra, [Modification.replace("sn", f"A{step}")])
        else:
            master.add(person(f"X{step}"))


def run_persist(steps, net, settle_each=False):
    """Drive one persist session over *net* through the update schedule;
    returns (content, delivered-notification byte stream)."""
    master = build_master()
    provider = ResyncProvider(master)
    net.register(master)
    content = SyncedContent(REQUEST, network=net)
    stream = bytearray()

    def deliver(update):
        stream.extend(encode_sync_update(update))
        content.apply_notification(update)

    deliveries, handle = net.persist_exchange(provider, REQUEST, deliver)
    content.apply(deliveries[-1].response)
    for step in steps:
        mutate(master, step)
        if settle_each:
            net.settle()
    net.settle()
    return master, content, bytes(stream), handle


def assert_same_content(a: SyncedContent, b: SyncedContent) -> None:
    assert {str(dn) for dn in a.entries} == {str(dn) for dn in b.entries}
    for dn in a.entries:
        assert a.entries[dn].semantically_equal(b.entries[dn])


class TestByteIdentity:
    @given(st.lists(st.integers(min_value=0, max_value=29), max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_delivered_stream_is_byte_identical(self, steps):
        """Below the high-water mark (settled every step so batches stay
        small), the pipelined session receives the oracle's exact
        notification sequence — same payload bytes, same content."""
        _, oracle, oracle_stream, _ = run_persist(steps, SimulatedNetwork())
        _, piped, piped_stream, _ = run_persist(
            steps,
            SimulatedNetwork(
                pipelined=True,
                batch=BatchConfig(max_batch=64, max_age_ms=2.0, high_water=4096),
                seed=1,
            ),
            settle_each=True,
        )
        assert piped_stream == oracle_stream
        assert_same_content(oracle, piped)

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_byte_identity_is_seed_independent(self, seed):
        steps = list(range(20))
        _, _, oracle_stream, _ = run_persist(steps, SimulatedNetwork())
        _, _, piped_stream, _ = run_persist(
            steps,
            SimulatedNetwork(pipelined=True, seed=seed),
            settle_each=True,
        )
        assert piped_stream == oracle_stream


class TestContentEquivalenceUnderCoalescing:
    @given(st.lists(st.integers(min_value=0, max_value=29), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_coalesced_stream_converges_to_oracle_content(self, steps):
        """Never settled mid-run and squeezed through a tiny high-water
        mark, the queue degrades to per-DN coalescing: fewer bytes, the
        same final content."""
        _, oracle, oracle_stream, _ = run_persist(steps, SimulatedNetwork())
        _, piped, piped_stream, handle = run_persist(
            steps,
            SimulatedNetwork(
                pipelined=True,
                batch=BatchConfig(max_batch=4, max_age_ms=5.0, high_water=4),
                seed=2,
            ),
            settle_each=False,
        )
        assert_same_content(oracle, piped)
        assert len(piped_stream) <= len(oracle_stream)

    def test_backpressured_consumer_still_converges(self):
        net = SimulatedNetwork(
            pipelined=True,
            batch=BatchConfig(max_batch=4, max_age_ms=2.0, high_water=4),
            seed=3,
        )
        master = build_master()
        provider = ResyncProvider(master)
        net.register(master)
        content = SyncedContent(REQUEST, network=net)
        deliveries, handle = net.persist_exchange(
            provider, REQUEST, content.apply_notification
        )
        content.apply(deliveries[-1].response)
        handle.delivery_queue.consumer_delay_ms = 100.0  # slow consumer
        for round_ in range(30):
            for step in range(6):
                mutate(master, step)
        # Queue memory stayed bounded by distinct DNs despite 180
        # updates against a consumer 100ms-per-batch slow.
        assert handle.delivery_queue.pending_count <= 8
        net.settle()
        assert content.matches_master(master)


class TestFaultEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.floats(min_value=0.0, max_value=0.5),
        steps=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_same_fault_schedule_same_converged_content(self, seed, rate, steps):
        """One seeded fault schedule, both transports: after heal both
        resilient consumers converge to the identical master content."""

        def run(pipelined):
            master = build_master()
            provider = ResyncProvider(master)
            kwargs = (
                dict(
                    pipelined=True,
                    batch=BatchConfig(max_batch=4, max_age_ms=2.0, high_water=8),
                    seed=seed,
                )
                if pipelined
                else {}
            )
            net = FaultyNetwork(FaultPlan(FaultSpec.uniform(rate), seed=seed), **kwargs)
            net.register(master)
            consumer = ResilientConsumer(
                REQUEST,
                provider,
                network=net,
                seed=seed,
                mode="persist",
                policy=RetryPolicy(
                    max_attempts=4, jitter=0.25, persist_refresh_interval=3
                ),
            )
            for step in range(steps):
                mutate(master, step)
                consumer.sync_once()
            net.heal()
            assert consumer.converge(master, max_cycles=16) is not None
            return master, consumer.content

        master_s, content_s = run(pipelined=False)
        master_p, content_p = run(pipelined=True)
        # Identical mutation schedule → identical masters; both replicas
        # converged to them → identical replica content.
        assert content_s.matches_master(master_s)
        assert content_p.matches_master(master_p)
        assert_same_content(content_s, content_p)


class TestDeterminism:
    def test_two_runs_identical_events_clock_and_bytes(self):
        def run():
            net = SimulatedNetwork(
                pipelined=True,
                batch=BatchConfig(max_batch=4, max_age_ms=2.0, high_water=8),
                seed=11,
            )
            master, content, stream, handle = run_persist(
                list(range(25)), net, settle_each=False
            )
            return (
                stream,
                net.scheduler.events_run,
                net.scheduler.now,
                net.stats.as_dict(),
            )

        assert run() == run()

    def test_two_faulty_runs_identical(self):
        def run():
            net = FaultyNetwork(
                FaultPlan(FaultSpec.uniform(0.3), seed=5),
                pipelined=True,
                batch=BatchConfig(max_batch=4, max_age_ms=2.0, high_water=8),
                seed=5,
            )
            try:
                master, content, stream, handle = run_persist(
                    list(range(20)), net, settle_each=False
                )
            except Exception as exc:  # a seeded subscribe fault is itself replayable
                return ("raised", type(exc).__name__)
            return (
                stream,
                net.fault_counts(),
                net.scheduler.events_run,
                net.scheduler.now,
                net.stats.as_dict(),
            )

        assert run() == run()


class TestCrashMidFlush:
    """Crash-mid-flush: batches deferred under backpressure when the
    server dies must be neither lost (the re-subscribed refresh covers
    them) nor double-applied (the stale queue dies with the old server
    incarnation and delivers nothing into the new one)."""

    @staticmethod
    def _pipelined_faulty(seed: int) -> FaultyNetwork:
        return FaultyNetwork(
            pipelined=True,
            batch=BatchConfig(max_batch=4, max_age_ms=2.0, high_water=8),
            seed=seed,
        )

    def test_backpressured_batches_survive_crash_resubscribe(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = self._pipelined_faulty(seed=13)
        net.register(master)
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            seed=13,
            mode="persist",
            policy=RetryPolicy(max_attempts=6, persist_refresh_interval=10_000),
        )
        assert consumer.sync_once() is not None
        stale_handle = consumer._handle
        queue = stale_handle.delivery_queue
        queue.consumer_delay_ms = 50.0  # backpressure: defer flushes
        for step in range(12):
            mutate(master, step)
        assert queue.busy or queue.pending_count > 0  # work in flight
        epoch = net.crash_epoch
        net.crash(provider)
        # The connection dropped with the server incarnation: the
        # consumer was forcibly disconnected and the stale queue closed
        # with its pending batches discarded (they were never acked).
        assert net.crash_epoch == epoch + 1
        assert consumer._handle is None
        assert queue.pending_count == 0
        assert queue.flush() == 0
        # Re-subscribing replaces the content wholesale, so nothing the
        # stale queue held is lost; the live tail then flows through
        # the *new* incarnation's queue only.
        assert consumer.sync_once() is not None
        assert consumer._handle is not None
        assert consumer._handle is not stale_handle
        for step in range(6):
            mutate(master, step + 100)
        net.settle()
        assert consumer.content.matches_master(master)

    def test_stale_queue_never_delivers_after_crash(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = self._pipelined_faulty(seed=17)
        net.register(master)
        content = SyncedContent(REQUEST, network=net)
        applied = []

        def deliver(update):
            applied.append(str(update.dn))
            content.apply_notification(update)

        deliveries, handle = net.persist_exchange(provider, REQUEST, deliver)
        content.apply(deliveries[-1].response)
        queue = handle.delivery_queue
        queue.consumer_delay_ms = 50.0
        for step in range(10):
            mutate(master, step)
        # Mid-flight: the consumer is busy applying a batch and/or more
        # batches sit deferred behind it, with retry/ack events armed
        # on the scheduler.
        assert queue.busy or queue.pending_count > 0
        before = len(applied)
        net.crash(provider)
        handle.abandon()  # what the forced disconnect does client-side
        net.settle()
        # Every armed retry/ack ran — and the closed queue delivered
        # nothing: no double-apply into the next incarnation.
        assert len(applied) == before
        assert queue.pending_count == 0

        # Re-subscribe past the restart window: the initial refresh
        # replaces the content, covering whatever the stale queue
        # discarded; the live tail applies exactly once per update.
        with pytest.raises(Exception):
            net.persist_exchange(provider, REQUEST, deliver)  # restarting
        deliveries2, handle2 = net.persist_exchange(provider, REQUEST, deliver)
        content.apply(deliveries2[-1].response)
        for step in range(6):
            mutate(master, step + 50)
        net.settle()
        assert content.matches_master(master)
        handle2.abandon()
