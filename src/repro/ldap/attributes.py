"""Attribute types, syntaxes and matching rules.

LDAP attribute values carry a *syntax* which determines how they are
normalized, compared for equality and — crucially for the paper's range
predicates ``(age>=30)`` — ordered.  RFC 2252 defines dozens of syntaxes;
the replication algorithms only depend on three behaviours, so we model
exactly those:

* :data:`Syntax.DIRECTORY_STRING` — case-insensitive strings with
  insignificant surrounding whitespace (``caseIgnoreMatch`` /
  ``caseIgnoreOrderingMatch``).  Ordering is lexicographic on the
  normalized form, which is what makes the paper's
  ``(serialnumber=_*_)`` substring-as-range trick work.
* :data:`Syntax.INTEGER` — numeric comparison (``integerOrderingMatch``).
* :data:`Syntax.CASE_EXACT_STRING` — case-sensitive strings, for values
  like mail local parts where case is meaningful to orderings.

An :class:`AttributeType` bundles a canonical name, aliases and a syntax.
The :class:`AttributeRegistry` resolves attribute names case-insensitively
(LDAP attribute descriptions are case-insensitive) and falls back to
directory-string semantics for unregistered attributes, so the library
works out of the box on schemaless data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "Syntax",
    "AttributeType",
    "AttributeRegistry",
    "DEFAULT_REGISTRY",
    "normalize_value",
]


class Syntax(enum.Enum):
    """Value syntax, determining normalization and ordering."""

    DIRECTORY_STRING = "directory_string"
    CASE_EXACT_STRING = "case_exact_string"
    INTEGER = "integer"
    DN_STRING = "dn_string"


def _norm_string(value: str) -> str:
    return " ".join(value.strip().lower().split())


def _norm_exact(value: str) -> str:
    return value.strip()


def _norm_integer(value: str):
    try:
        return int(str(value).strip())
    except (TypeError, ValueError):
        # Schema-violating value: fall back to string semantics rather
        # than refusing to store/compare the entry (real servers accept
        # and later reject at compare time; we degrade gracefully).
        return _norm_string(str(value))


_NORMALIZERS = {
    Syntax.DIRECTORY_STRING: _norm_string,
    Syntax.CASE_EXACT_STRING: _norm_exact,
    Syntax.INTEGER: _norm_integer,
    Syntax.DN_STRING: _norm_string,
}


@dataclass(frozen=True)
class AttributeType:
    """Description of one attribute type.

    Attributes:
        name: canonical name, e.g. ``serialNumber``.
        syntax: value syntax used for matching and ordering.
        aliases: alternative names resolving to this type (e.g. ``sn`` /
            ``surname``).
        single_valued: whether the schema restricts the attribute to one
            value (advisory; the store enforces it on add/modify).
        ordered: whether ordering (``>=``/``<=``) matches are defined.
    """

    name: str
    syntax: Syntax = Syntax.DIRECTORY_STRING
    aliases: Tuple[str, ...] = ()
    single_valued: bool = False
    ordered: bool = True

    @property
    def key(self) -> str:
        """Normalized lookup key for the canonical name."""
        return self.name.lower()

    def normalize(self, value: str):
        """Normalize *value* for equality/ordering comparison."""
        return _NORMALIZERS[self.syntax](value)


class AttributeRegistry:
    """Case-insensitive registry of attribute types.

    Unknown attributes resolve to a synthesized directory-string type so
    callers never need to special-case unregistered names.
    """

    def __init__(self, types: Iterable[AttributeType] = ()):
        self._by_name: Dict[str, AttributeType] = {}
        for at in types:
            self.register(at)

    def register(self, attribute_type: AttributeType) -> None:
        """Register a type under its canonical name and all aliases."""
        self._by_name[attribute_type.key] = attribute_type
        for alias in attribute_type.aliases:
            self._by_name[alias.lower()] = attribute_type

    def get(self, name: str) -> AttributeType:
        """Resolve *name*, synthesizing a directory-string type if unknown."""
        found = self._by_name.get(name.lower())
        if found is not None:
            return found
        return AttributeType(name=name)

    def known(self, name: str) -> bool:
        """True when *name* (or an alias) has been registered."""
        return name.lower() in self._by_name

    def canonical(self, name: str) -> str:
        """Canonical spelling of *name* (the input itself when unknown)."""
        found = self._by_name.get(name.lower())
        return found.name if found is not None else name


def _standard_types() -> Tuple[AttributeType, ...]:
    """Attribute types used by the paper's directory and the RFCs it cites."""
    return (
        AttributeType("objectClass", aliases=("objectclass",), ordered=False),
        AttributeType("cn", aliases=("commonName",)),
        AttributeType("sn", aliases=("surname",)),
        AttributeType("givenName"),
        AttributeType("uid", aliases=("userid",)),
        AttributeType("mail", syntax=Syntax.CASE_EXACT_STRING),
        AttributeType("telephoneNumber"),
        AttributeType("serialNumber"),
        AttributeType("employeeNumber", single_valued=True),
        AttributeType("departmentNumber"),
        AttributeType("divisionNumber"),
        AttributeType("ou", aliases=("organizationalUnitName",)),
        AttributeType("o", aliases=("organizationName",)),
        AttributeType("c", aliases=("countryName",), single_valued=True),
        AttributeType("l", aliases=("localityName", "location")),
        AttributeType("st", aliases=("stateOrProvinceName",)),
        AttributeType("title"),
        AttributeType("description"),
        AttributeType("age", syntax=Syntax.INTEGER),
        AttributeType("roomNumber"),
        AttributeType("buildingName"),
        AttributeType("postalCode"),
        AttributeType("manager", syntax=Syntax.DN_STRING),
        AttributeType("seeAlso", syntax=Syntax.DN_STRING),
        AttributeType("member", syntax=Syntax.DN_STRING),
        AttributeType("modifyTimestamp", single_valued=True),
        AttributeType("createTimestamp", single_valued=True),
        AttributeType("entrySizeBytes", syntax=Syntax.INTEGER, single_valued=True),
    )


DEFAULT_REGISTRY = AttributeRegistry(_standard_types())
"""Registry preloaded with the schema the paper's workloads touch."""


def normalize_value(attr: str, value: str, registry: Optional[AttributeRegistry] = None):
    """Normalize *value* under *attr*'s syntax (module-level convenience)."""
    reg = registry if registry is not None else DEFAULT_REGISTRY
    return reg.get(attr).normalize(value)
