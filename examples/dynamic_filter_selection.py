#!/usr/bin/env python3
"""Dynamic filter selection adapting to a shifting access pattern (§6.2).

A filter replica starts empty.  Users in phase 1 query departments of
one division; in phase 2 interest shifts to another division.  The
selector keeps hit statistics for candidate filters and periodically
performs a *revolution*: stored and candidate filters are combined and
the best benefit/size ratios are kept under the replica's entry budget.
Watch the stored filter set follow the workload.

Run:  python examples/dynamic_filter_selection.py
"""

import random

from repro.core import (
    FilterReplica,
    FilterSelector,
    Generalizer,
    IdentityGeneralization,
)
from repro.ldap import Scope, SearchRequest
from repro.metrics import ReplicaDriver
from repro.server import DirectoryServer, SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import DirectoryConfig, generate_directory

DEPT_TEMPLATE = "(&(departmentnumber=_)(divisionnumber=_)(objectclass=department))"
REVOLUTION_INTERVAL = 100
BUDGET_ENTRIES = 12


def dept_query(division: str, dept_index: int) -> SearchRequest:
    dept = f"{division}{dept_index:02d}"
    return SearchRequest(
        "",
        Scope.SUB,
        f"(&(objectClass=department)(departmentNumber={dept})(divisionNumber={division}))",
    )


def main() -> None:
    directory = generate_directory(DirectoryConfig(employees=1000))
    master = DirectoryServer("master")
    master.add_naming_context(directory.suffix)
    master.load(directory.entries)
    provider = ResyncProvider(master)

    replica = FilterReplica("branch", network=SimulatedNetwork())
    selector = FilterSelector(
        replica,
        Generalizer([IdentityGeneralization(DEPT_TEMPLATE)]),
        ReplicaDriver.size_estimator_for(master),
        budget_entries=BUDGET_ENTRIES,
        revolution_interval=REVOLUTION_INTERVAL,
        provider=provider,
    )

    rng = random.Random(7)

    def run_phase(name: str, division: str, queries: int) -> None:
        hits = 0
        for _ in range(queries):
            query = dept_query(division, rng.randrange(10))
            if replica.answer(query).is_hit:
                hits += 1
            selector.observe(query)
        stored = sorted(
            str(s.request.filter) for s in replica.stored_filters()
        )
        print(f"\n{name}: division {division}, {queries} queries")
        print(f"  hit ratio: {hits / queries:.2f}")
        print(f"  revolutions so far: {selector.revolutions}")
        print(f"  stored filters ({len(stored)}):")
        for text in stored[:6]:
            print(f"    {text}")
        if len(stored) > 6:
            print(f"    ... and {len(stored) - 6} more")

    # Phase 1: everyone asks about division 20 departments.
    run_phase("phase 1 (cold start)", "20", 300)
    # Phase 2: same division — the installed filters now pay off.
    run_phase("phase 2 (warm)", "20", 300)
    # Phase 3: interest shifts to division 50; revolutions re-target.
    run_phase("phase 3 (shifted)", "50", 300)
    run_phase("phase 4 (re-warmed)", "50", 300)

    print(
        f"\nrevolution traffic: {selector.revolution_entry_pdus} entry PDUs "
        f"fetched across {selector.revolutions} revolutions "
        f"(the Figure 7 component controlled by R={REVOLUTION_INTERVAL})"
    )


if __name__ == "__main__":
    main()
