"""Command-line interface.

Seven subcommands wrap the library for shell use::

    repro-ldap gen-directory --employees 5000 --out directory.ldif
    repro-ldap gen-carrier --subscribers 10000 --out carrier.ldif
    repro-ldap gen-workload --queries 10000 --days 2 --out trace.txt
    repro-ldap case-study --employees 4000 --queries 6000
    repro-ldap obs --employees 1000 --queries 1500
    repro-ldap recovery --journal-dir /tmp/resync-journal --sessions 10
    repro-ldap snapshot --snapshot-dir /tmp/replica-snapshot

``gen-directory`` / ``gen-carrier`` write the synthetic DITs as LDIF;
``gen-workload`` writes one query per line (tab-separated: day, type,
filter, scoped base); ``case-study`` runs the §7 filter-vs-subtree
comparison and prints the summary table; ``obs`` runs a small built-in
workload with the observability layer enabled and pretty-prints the
resulting metrics snapshot and span aggregates (see
``docs/OBSERVABILITY.md``); ``recovery`` demonstrates the durable
provider end to end with a file-backed journal: replica sessions are
opened, the master mutates, the provider crashes, and the recovered
incarnation serves every cookie an incremental delta instead of a
full resync (``docs/PROTOCOL.md`` §10); ``snapshot`` demonstrates the
consumer-side counterpart: a replica dumps its content to a
file-backed snapshot, restarts, warm-starts from the verified dump and
resumes in O(delta) — then the dump is deliberately corrupted to show
the detect-and-discard path (``docs/RECOVERY.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence, TextIO

from .core import FilterReplica, SubtreeReplica
from .ldap import Scope, SearchRequest, entries_to_ldif
from .metrics import ReplicaDriver
from .server import DirectoryServer, SimulatedNetwork
from .sync import ResyncProvider
from .workload import (
    CarrierConfig,
    DirectoryConfig,
    QueryType,
    WorkloadConfig,
    WorkloadGenerator,
    generate_carrier_directory,
    generate_directory,
)

__all__ = ["main"]


def _open_out(path: Optional[str]) -> TextIO:
    if path is None or path == "-":
        return sys.stdout
    return open(path, "w", encoding="utf-8")


def _cmd_gen_directory(args: argparse.Namespace) -> int:
    directory = generate_directory(
        DirectoryConfig(employees=args.employees, seed=args.seed)
    )
    out = _open_out(args.out)
    try:
        out.write(entries_to_ldif(directory.entries))
    finally:
        if out is not sys.stdout:
            out.close()
    print(
        f"wrote {len(directory.entries)} entries "
        f"({directory.employee_count} employees)",
        file=sys.stderr,
    )
    return 0


def _cmd_gen_carrier(args: argparse.Namespace) -> int:
    directory = generate_carrier_directory(
        CarrierConfig(subscribers=args.subscribers, seed=args.seed)
    )
    out = _open_out(args.out)
    try:
        out.write(entries_to_ldif(directory.entries))
    finally:
        if out is not sys.stdout:
            out.close()
    print(f"wrote {len(directory.entries)} entries", file=sys.stderr)
    return 0


def _cmd_gen_workload(args: argparse.Namespace) -> int:
    directory = generate_directory(
        DirectoryConfig(employees=args.employees, seed=args.seed)
    )
    generator = WorkloadGenerator(directory, WorkloadConfig(seed=args.seed + 1))
    trace = generator.generate(args.queries, days=args.days)
    out = _open_out(args.out)
    try:
        trace.save(out)
    finally:
        if out is not sys.stdout:
            out.close()
    shares = ", ".join(
        f"{t.value}={s:.0%}" for t, s in sorted(
            trace.distribution().items(), key=lambda kv: -kv[1]
        )
    )
    print(f"wrote {len(trace)} queries ({shares})", file=sys.stderr)
    return 0


def _cmd_case_study(args: argparse.Namespace) -> int:
    directory = generate_directory(
        DirectoryConfig(employees=args.employees, seed=args.seed)
    )
    trace = WorkloadGenerator(directory, WorkloadConfig(seed=args.seed + 1)).generate(
        args.queries, days=2
    )
    day2 = trace.day(2)

    # day-1 hot block statistics → static filter selection (§6.2)
    counts = {}
    for record in trace.day(1).of_type(QueryType.SERIAL):
        value = str(record.request.filter)[len("(serialNumber=") : -1]
        counts[(value[:4], value[6:])] = counts.get((value[:4], value[6:]), 0) + 1
    hot_blocks = sorted(counts, key=counts.get, reverse=True)[: args.filters]

    def fresh_master() -> DirectoryServer:
        master = DirectoryServer("master")
        master.add_naming_context(directory.suffix)
        master.load(directory.entries)
        return master

    master = fresh_master()
    provider = ResyncProvider(master)
    subtree = SubtreeReplica("subtree", network=SimulatedNetwork())
    for cc in directory.geography_countries(args.geography):
        subtree.add_context(f"c={cc},o=xyz")
    subtree.sync(provider)
    subtree_result = ReplicaDriver(
        master, subtree, provider=provider, use_scoped=True
    ).run(day2)

    master = fresh_master()
    provider = ResyncProvider(master)
    filt = FilterReplica("filter", network=SimulatedNetwork(), cache_capacity=50)
    for block, cc in hot_blocks:
        filt.add_filter(
            SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc})"), provider
        )
    filt.add_filter(SearchRequest("", Scope.SUB, "(objectClass=location)"), provider)
    filter_result = ReplicaDriver(master, filt, provider=provider).run(day2)

    print(f"{'metric':<24}{'subtree':>12}{'filter':>12}")
    print(f"{'replica entries':<24}{subtree_result.replica_entries:>12}{filter_result.replica_entries:>12}")
    print(f"{'hit ratio':<24}{subtree_result.hit_ratio:>12.3f}{filter_result.hit_ratio:>12.3f}")
    for qtype in QueryType:
        s = subtree_result.hit_ratio_by_type.get(qtype.value, 0.0)
        f = filter_result.hit_ratio_by_type.get(qtype.value, 0.0)
        print(f"{'  ' + qtype.value:<24}{s:>12.3f}{f:>12.3f}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Run a small workload with metrics + tracing on, print the result.

    The same registry backs the master server's operation timers and the
    replica network's traffic counters, a ``TraceCollector`` aggregates
    the spans emitted along the answer/sync/revolution paths, and the QC
    containment cache is exported at the end — one snapshot of every
    instrument family documented in ``docs/OBSERVABILITY.md``.
    """
    from .core.containment import observe_containment_cache
    from .obs import MetricsRegistry, TraceCollector, collecting

    directory = generate_directory(
        DirectoryConfig(employees=args.employees, seed=args.seed)
    )
    trace = WorkloadGenerator(directory, WorkloadConfig(seed=args.seed + 1)).generate(
        args.queries, days=2
    )

    registry = MetricsRegistry()
    master = DirectoryServer("master", metrics=registry)
    master.add_naming_context(directory.suffix)
    master.load(directory.entries)
    provider = ResyncProvider(master)
    network = SimulatedNetwork(registry=registry)
    replica = FilterReplica("obs", network=network, cache_capacity=50)

    counts = {}
    for record in trace.day(1).of_type(QueryType.SERIAL):
        value = str(record.request.filter)[len("(serialNumber=") : -1]
        counts[(value[:4], value[6:])] = counts.get((value[:4], value[6:]), 0) + 1
    hot = sorted(counts, key=counts.get, reverse=True)[: args.filters]

    collector = TraceCollector()
    with collecting(collector):
        for block, cc in hot:
            replica.add_filter(
                SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc})"),
                provider,
            )
        for index, record in enumerate(trace.day(2)):
            answer = replica.answer(record.request)
            if not answer.is_hit:
                replica.observe_miss(
                    record.request, master.search(record.request).entries
                )
            if (index + 1) % 250 == 0:
                replica.sync(provider)
    observe_containment_cache(registry)

    print("# metrics")
    for name, value in sorted(registry.to_dict().items()):
        if isinstance(value, dict):
            rendered = " ".join(
                f"{k}={value[k]}" for k in ("count", "sum", "mean") if k in value
            )
            print(f"{name:<44} {rendered}")
        else:
            print(f"{name:<44} {value}")
    print()
    print("# spans (path count total_s max_s attached)")
    for path, agg in sorted(collector.aggregate().items()):
        attached = " ".join(
            f"{k}={v}" for k, v in sorted(agg.items())
            if k not in ("count", "total_s", "max_s")
        )
        print(
            f"{path:<36} {agg['count']:>6} {agg['total_s']:.4f} "
            f"{agg['max_s']:.6f} {attached}".rstrip()
        )
    if args.prometheus:
        print()
        print("# prometheus exposition")
        print(registry.to_prometheus_text())
    return 0


def _cmd_recovery(args: argparse.Namespace) -> int:
    """Durable-provider walkthrough on a file-backed journal.

    Opens *sessions* replica sessions against a durable master, applies
    a burst of updates, crashes the provider, recovers a fresh provider
    instance from the journal directory, and polls every session once —
    printing how many bytes the resumes cost against what a full resync
    would have, plus the ``sync.durability.*`` counters.
    """
    from .ldap.entry import Entry
    from .server import Modification
    from .sync import DurabilityConfig, FileJournal, SyncedContent

    directory = generate_directory(
        DirectoryConfig(employees=args.employees, seed=args.seed)
    )
    master = DirectoryServer("master")
    master.add_naming_context(directory.suffix)
    master.load(directory.entries)

    journal = FileJournal(args.journal_dir)
    durability = DurabilityConfig(snapshot_interval=args.snapshot_interval)
    provider = ResyncProvider(master, durability=durability, journal=journal)

    def response_bytes(response) -> int:
        return sum(u.pdu_bytes for u in response.updates)

    people = [e for e in directory.entries if "person" in e.object_classes]
    consumers = []
    initial_bytes = 0
    for i in range(args.sessions):
        request = SearchRequest(
            directory.suffix, Scope.SUB, f"(sn={people[i % len(people)].get('sn')[0]})"
        )
        content = SyncedContent(request)
        initial_bytes += response_bytes(content.poll(provider))
        consumers.append(content)

    for step, entry in enumerate(people[-args.updates :]):
        master.modify(entry.dn, [Modification.replace("title", f"T{step}")])
    # A new entry matching the first session, so the post-crash delta is
    # visibly incremental rather than empty.
    master.add(
        Entry(
            f"cn=recovery probe,{directory.suffix}",
            {
                "objectClass": ["person"],
                "cn": ["recovery probe"],
                "sn": [people[0].get("sn")[0]],
            },
        )
    )

    provider.restart()  # crash: all in-memory session state gone
    provider.detach()
    recovered = ResyncProvider(master, durability=durability, journal=journal)
    replayed = recovered.recover()

    delta_bytes = sum(response_bytes(c.poll(recovered)) for c in consumers)
    print(f"sessions recovered : {recovered.active_session_count}/{args.sessions}")
    print(f"journal records    : {replayed} replayed")
    print(f"initial content    : {initial_bytes} bytes")
    print(f"post-crash resumes : {delta_bytes} bytes")
    for name, value in sorted(master.metrics.to_dict().items()):
        if name.startswith(("sync.durability.", "sync.admission.")):
            print(f"{name:<40} {value}")
    journal.close()
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Consumer warm-start walkthrough on a file-backed snapshot store.

    A replica synchronizes and dumps its content (LDIF + cookie +
    checksum), the master keeps mutating, the replica "restarts" —
    warm-starting from the verified snapshot and paying only the delta
    — and the byte cost is printed against a cold full rebuild.  A
    second restart runs against a deliberately corrupted dump to show
    detection: the snapshot is discarded, never applied, and the
    replica still converges via the rebuild rung.
    """
    from .server import FaultyNetwork, Modification
    from .sync import FileSnapshotStore, ResilientConsumer

    directory = generate_directory(
        DirectoryConfig(employees=args.employees, seed=args.seed)
    )
    master = DirectoryServer("master")
    master.add_naming_context(directory.suffix)
    master.load(directory.entries)
    provider = ResyncProvider(master)
    people = [e for e in directory.entries if "person" in e.object_classes]
    request = SearchRequest(directory.suffix, Scope.SUB, "(objectClass=person)")

    store = FileSnapshotStore(args.snapshot_dir)
    first_net = FaultyNetwork()
    consumer = ResilientConsumer(
        request, provider, network=first_net, snapshot_store=store
    )
    consumer.sync_once()
    print(f"replica synced     : {len(consumer.content)} entries")
    print(f"snapshot written   : {store.size_bytes} bytes -> {store.path}")

    for step, entry in enumerate(people[: args.updates]):
        master.modify(entry.dn, [Modification.replace("title", f"T{step}")])

    warm_net = FaultyNetwork()
    warm = ResilientConsumer(
        request, provider, network=warm_net, snapshot_store=store
    )
    warm.sync_once()
    cold_net = FaultyNetwork()
    cold = ResilientConsumer(request, provider, network=cold_net)
    cold.sync_once()
    ratio = cold_net.stats.bytes_sent / max(warm_net.stats.bytes_sent, 1)
    print(f"warm-start resume  : {warm_net.stats.bytes_sent} bytes "
          f"({warm.snapshot_recoverer.stage})")
    print(f"cold full rebuild  : {cold_net.stats.bytes_sent} bytes "
          f"({ratio:.1f}x the warm start)")

    store.damage_corrupt(0.5)
    damaged_net = FaultyNetwork()
    damaged = ResilientConsumer(
        request, provider, network=damaged_net, snapshot_store=store
    )
    damaged.sync_once()
    print(f"corrupted restart  : snapshot {damaged.snapshot_recoverer.stage}, "
          f"rebuilt {len(damaged.content)} entries from the master")
    for name, value in sorted(damaged_net.registry.to_dict().items()):
        if name.startswith("sync.snapshot."):
            print(f"{name:<40} {value}")
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    """Chaos soak run with the canonical fault schedule.

    Drives a master plus N tenant replicas (health state machine on)
    through simulated hours of diurnal updates, flash-crowd query
    bursts and region renames, under overlapping fault windows —
    partitions, crashes, slow nodes, message noise — checking the soak
    invariants continuously (docs/FAULTS.md §5).  Prints the fault
    schedule, the fleet-status table and the run fingerprint; exits
    non-zero on an invariant violation, naming the seed and virtual
    timestamp that replay it.
    """
    from .chaos import FaultSchedule, InvariantViolation, SoakConfig, SoakRunner

    config = SoakConfig(
        seed=args.seed,
        tenants=args.tenants,
        employees=args.employees,
        duration_hours=args.hours,
    )
    schedule = FaultSchedule.canonical(
        args.seed, horizon_ms=args.hours * 3_600_000.0
    )
    print(
        f"soak: seed={args.seed} tenants={args.tenants} "
        f"horizon={args.hours:g}h windows={len(schedule.windows)} "
        f"(overlapping pairs: {schedule.overlap_count()})"
    )
    for row in schedule.describe():
        span = f"{row['start_ms'] / 60000.0:6.1f}..{row['end_ms'] / 60000.0:6.1f} min"
        print(f"  {row['label']:<16} {row['kind']:<10} {span}")
    runner = SoakRunner(config, schedule)
    try:
        report = runner.run()
    except InvariantViolation as violation:
        print(f"\nFAIL: {violation}")
        return 1
    print()
    print(report.fleet_table())
    print()
    print(f"updates committed  : {report.updates_committed}")
    print(f"region renames     : {report.renamed_entries} entries moved")
    print(
        f"queries served     : {report.queries_served} "
        f"({report.degraded_queries} stamped degraded)"
    )
    print(f"invariant checks   : {report.invariant_checks} (0 violations)")
    print(f"faults injected    : {sum(report.fault_counts.values())}")
    for kind, count in sorted(report.fault_counts.items()):
        print(f"  {kind:<20} {count}")
    print(f"round trips        : {report.round_trips}")
    print(f"virtual time       : {report.elapsed_virtual_ms / 60000.0:.1f} min")
    print(f"fingerprint        : {report.fingerprint()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ldap",
        description="Filter based directory replication (ICDCS 2005) tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen-directory", help="write the enterprise DIT as LDIF")
    p.add_argument("--employees", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=20050607)
    p.add_argument("--out", default="-")
    p.set_defaults(func=_cmd_gen_directory)

    p = sub.add_parser("gen-carrier", help="write the flat carrier DIT as LDIF")
    p.add_argument("--subscribers", type=int, default=5_000)
    p.add_argument("--seed", type=int, default=33)
    p.add_argument("--out", default="-")
    p.set_defaults(func=_cmd_gen_carrier)

    p = sub.add_parser("gen-workload", help="write a Table 1 query trace")
    p.add_argument("--employees", type=int, default=10_000)
    p.add_argument("--queries", type=int, default=10_000)
    p.add_argument("--days", type=int, default=2)
    p.add_argument("--seed", type=int, default=20050607)
    p.add_argument("--out", default="-")
    p.set_defaults(func=_cmd_gen_workload)

    p = sub.add_parser("case-study", help="run the §7 filter-vs-subtree comparison")
    p.add_argument("--employees", type=int, default=4_000)
    p.add_argument("--queries", type=int, default=6_000)
    p.add_argument("--filters", type=int, default=25)
    p.add_argument("--geography", default="AP")
    p.add_argument("--seed", type=int, default=20050607)
    p.set_defaults(func=_cmd_case_study)

    p = sub.add_parser(
        "obs", help="run a small workload and print the observability snapshot"
    )
    p.add_argument("--employees", type=int, default=1_000)
    p.add_argument("--queries", type=int, default=1_500)
    p.add_argument("--filters", type=int, default=15)
    p.add_argument("--seed", type=int, default=20050607)
    p.add_argument(
        "--prometheus",
        action="store_true",
        help="also print the Prometheus exposition text",
    )
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser(
        "recovery",
        help="durable-provider crash/recovery walkthrough (file journal)",
    )
    p.add_argument("--journal-dir", required=True)
    p.add_argument("--employees", type=int, default=500)
    p.add_argument("--sessions", type=int, default=10)
    p.add_argument("--updates", type=int, default=40)
    p.add_argument("--snapshot-interval", type=int, default=64)
    p.add_argument("--seed", type=int, default=20050607)
    p.set_defaults(func=_cmd_recovery)

    p = sub.add_parser(
        "snapshot",
        help="consumer snapshot warm-start walkthrough (file store)",
    )
    p.add_argument("--snapshot-dir", required=True)
    p.add_argument("--employees", type=int, default=500)
    p.add_argument("--updates", type=int, default=25)
    p.add_argument("--seed", type=int, default=20050607)
    p.set_defaults(func=_cmd_snapshot)

    p = sub.add_parser(
        "soak",
        help="chaos soak: canonical fault schedule + fleet health table",
    )
    p.add_argument("--hours", type=float, default=1.0)
    p.add_argument("--tenants", type=int, default=3)
    p.add_argument("--employees", type=int, default=240)
    p.add_argument("--seed", type=int, default=20050607)
    p.set_defaults(func=_cmd_soak)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
