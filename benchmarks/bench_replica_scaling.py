"""E18 — derived: routed answering / fan-out vs the seed linear scans.

The paper's replica answers a query by scanning every stored filter for
containment (§7.1), and its provider fans an update out by evaluating
every active session's filter (§5) — both linear in the configuration
size.  The routing subsystem (docs/ROUTING.md) replaces the scans with
guard-atom and holder/fingerprint candidate routing, equivalence-tested
against the linear oracles in ``tests/core/test_routing_equivalence.py``
and ``tests/sync/test_router.py``.  This bench measures what the
routing buys: answer throughput against stored-filter count and update
fan-out throughput against active-session count, sweeping 50/200/500.

The in-bench asserts double as the perf smoke: a reversion to the
linear scan (or a routing layer that silently degrades to one) fails
the ``>= 5x at 500`` speedup floors and the sublinear
``containment_checks`` ceiling, independent of machine speed.  The
exported ``*_per_s`` rates are additionally diffed against
``benchmarks/baselines/replica_scaling.json`` by ``validate_results.py``.

Workload: a synthetic site directory of 600 serialNumber blocks with 4
persons each (serials ``BBBBSSUS``, the paper's site-block shape);
stored filters and session filters are the generalized per-block
``(serialNumber=BBBB*US)`` substrings; queries are distinct per-query
equality serials (so neither the QC pair cache nor the routing memo can
answer from a previous query); updates replace ``telephoneNumber`` — an
attribute no filter constrains, which is exactly the case the paper's
linear fan-out pays full price for and holder routing does not.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import pytest

from repro.core import FilterReplica
from repro.core.containment import clear_containment_cache
from repro.ldap import Entry, ReSyncControl, Scope, SearchRequest, SyncMode
from repro.server import DirectoryServer, Modification
from repro.sync import ResyncProvider

from .common import quiesced_gc as _quiesced
from .common import report

BLOCKS = 600
PERSONS_PER_BLOCK = 4
SWEEP = (50, 200, 500)
N_QUERIES = 400
N_UPDATES = 150
# Every timed loop runs 1 warm-up + TIMING_REPEATS passes and reports
# the *best* pass (the min-time estimator `timeit` recommends): on a
# shared single-vCPU runner, host CPU steal only ever slows a pass
# down, so the fastest pass is the stable machine-capability number —
# a median still drifts 20-40% with sustained steal phases, which is
# exactly the committed-rate flake the 20% baseline gate must not
# inherit.  The in-bench speedup floors compare best against best, so
# both arms shed their stolen passes before the ratio is taken.
TIMING_REPEATS = 5
# Update targets stay inside the first TARGET_BLOCKS blocks at every
# sweep point (covered by sessions at every size), so the master-side
# modify cost is a constant and the sweep varies only the fan-out.
TARGET_BLOCKS = SWEEP[0]


def _serial(block: int, seq: int) -> str:
    return f"{block:04d}{seq:02d}US"


def _person(block: int, seq: int) -> Entry:
    cn = f"p{block:04d}{seq}"
    return Entry(
        f"cn={cn},o=xyz",
        {
            "objectClass": ["person"],
            "cn": cn,
            "sn": f"s{block % 37}",
            "serialNumber": [_serial(block, seq)],
            "telephoneNumber": ["+1-000"],
        },
    )


def _block_filter(block: int) -> SearchRequest:
    return SearchRequest("o=xyz", Scope.SUB, f"(serialNumber={block:04d}*US)")


@pytest.fixture(scope="module")
def site_entries() -> List[List[Entry]]:
    """Per-block person entries for the synthetic site directory."""
    return [
        [_person(block, seq) for seq in range(PERSONS_PER_BLOCK)]
        for block in range(BLOCKS)
    ]


def _fresh_master(site_entries: List[List[Entry]]) -> DirectoryServer:
    master = DirectoryServer("master")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for block_entries in site_entries:
        for entry in block_entries:
            master.add(entry)
    return master


# ----------------------------------------------------------------------
# sweep points
# ----------------------------------------------------------------------
def _answer_point(
    site_entries: List[List[Entry]], n_filters: int, routing: bool
) -> Dict[str, float]:
    """Answer *N_QUERIES* distinct serial lookups over *n_filters*."""
    replica = FilterReplica("r", cache_capacity=0, routing=routing)
    for block in range(n_filters):
        replica.load_directly(_block_filter(block), site_entries[block])
    rates = []
    passes = 1 + TIMING_REPEATS  # warm-up + timed repeats
    for rep in range(passes):
        # Distinct serials per query *and per pass*: neither the global
        # QC pair cache nor the routing memo may answer from an earlier
        # query's (or pass's) work.
        base = rep * N_QUERIES
        queries = [
            SearchRequest(
                "o=xyz",
                Scope.SUB,
                f"(serialNumber={(i * 7) % n_filters:04d}{base + i:04d}US)",
            )
            for i in range(N_QUERIES)
        ]
        clear_containment_cache()
        with _quiesced():
            start = time.perf_counter()
            hits = sum(1 for q in queries if replica.answer(q).is_hit)
            elapsed = time.perf_counter() - start
        assert hits == N_QUERIES
        if rep:  # pass 0 is the warm-up
            rates.append(N_QUERIES / elapsed if elapsed else 0.0)
    return {
        "rate": max(rates),  # best pass: min-time estimator (see TIMING_REPEATS)
        "checks_per_query": replica.containment_checks / (passes * N_QUERIES),
    }


def _fanout_point(
    site_entries: List[List[Entry]], n_sessions: int, routed: bool
) -> Dict[str, float]:
    """Fan *N_UPDATES* master updates out to *n_sessions* poll sessions."""
    master = _fresh_master(site_entries)
    provider = ResyncProvider(master, routed=routed)
    for i in range(n_sessions):
        provider.handle(
            _block_filter(i % BLOCKS), ReSyncControl(mode=SyncMode.POLL)
        )
    # telephoneNumber occurs in no session filter: the linear scan still
    # evaluates every session twice per update, holder routing visits
    # only the block's holders.
    targets = [
        str(site_entries[(i * 13) % TARGET_BLOCKS][i % PERSONS_PER_BLOCK].dn)
        for i in range(N_UPDATES)
    ]
    rates = []
    passes = 1 + TIMING_REPEATS  # warm-up + timed repeats
    for rep in range(passes):
        with _quiesced():
            start = time.perf_counter()
            for i, dn in enumerate(targets):
                master.modify(
                    dn, [Modification.replace("telephoneNumber", f"+1-{rep}-{i}")]
                )
            elapsed = time.perf_counter() - start
        if rep:  # pass 0 is the warm-up
            rates.append(N_UPDATES / elapsed if elapsed else 0.0)
    routed_candidates = master.metrics.counter("sync.route.candidates").value
    return {
        "rate": max(rates),  # best pass: min-time estimator (see TIMING_REPEATS)
        "candidates_per_update": routed_candidates / (passes * N_UPDATES),
    }


@pytest.fixture(scope="module")
def scaling_rows(site_entries):
    rows = []
    points = {}
    for n in SWEEP:
        linear_a = _answer_point(site_entries, n, routing=False)
        routed_a = _answer_point(site_entries, n, routing=True)
        linear_f = _fanout_point(site_entries, n, routed=False)
        routed_f = _fanout_point(site_entries, n, routed=True)
        points[n] = (linear_a, routed_a, linear_f, routed_f)
        rows.append(
            (
                n,
                linear_a["rate"],
                routed_a["rate"],
                routed_a["rate"] / linear_a["rate"],
                linear_a["checks_per_query"],
                routed_a["checks_per_query"],
                linear_f["rate"],
                routed_f["rate"],
                routed_f["rate"] / linear_f["rate"],
            )
        )
    return rows, points


def test_replica_scaling(benchmark, site_entries, scaling_rows):
    rows, points = scaling_rows
    top = SWEEP[-1]
    linear_a, routed_a, linear_f, routed_f = points[top]
    metrics = {
        # Gated rates (validate_results: lower is a regression).
        "answer_routed_per_s": routed_a["rate"],
        "fanout_routed_per_s": routed_f["rate"],
        # Informational context for the baseline diff.
        "answer_linear_rate": linear_a["rate"],
        "fanout_linear_rate": linear_f["rate"],
        "answer_speedup_at_500": routed_a["rate"] / linear_a["rate"],
        "fanout_speedup_at_500": routed_f["rate"] / linear_f["rate"],
        "routed_checks_per_query_at_500": routed_a["checks_per_query"],
        "linear_checks_per_query_at_500": linear_a["checks_per_query"],
        "routed_candidates_per_update_at_500": routed_f["candidates_per_update"],
    }
    report(
        "replica_scaling",
        f"Routed vs linear answering/fan-out, {N_QUERIES} queries / "
        f"{N_UPDATES} updates per point",
        [
            "size",
            "ans_lin/s",
            "ans_rt/s",
            "ans_x",
            "chk_lin",
            "chk_rt",
            "upd_lin/s",
            "upd_rt/s",
            "upd_x",
        ],
        rows,
        params={
            "blocks": BLOCKS,
            "persons_per_block": PERSONS_PER_BLOCK,
            "queries_per_point": N_QUERIES,
            "updates_per_point": N_UPDATES,
            "sweep": "/".join(str(n) for n in SWEEP),
        },
        metrics=metrics,
        paper_expected={
            "shape": "routed throughput stays flat as stored filters and "
            "sessions grow; linear scans degrade proportionally"
        },
    )

    # Perf smoke (machine-independent): the routed paths must beat the
    # linear oracles by 5x at the top of the sweep, and never be the
    # slower path anywhere.  A reversion to the linear scan fails here.
    for n, (la, ra, lf, rf) in points.items():
        floor = 5.0 if n == top else 1.5
        assert ra["rate"] >= floor * la["rate"], (
            f"answer routing speedup below {floor}x at {n} stored filters"
        )
        assert rf["rate"] >= floor * lf["rate"], (
            f"fan-out routing speedup below {floor}x at {n} sessions"
        )

    # Containment checks per answered query must be sublinear in the
    # stored-filter count: flat across a 10x sweep, against a linear
    # scan that pays ~n/2.
    first, last = SWEEP[0], SWEEP[-1]
    routed_cpq = {n: points[n][1]["checks_per_query"] for n in SWEEP}
    assert routed_cpq[last] <= 4.0
    assert routed_cpq[last] <= 2.0 * routed_cpq[first] + 1.0
    assert points[last][0]["checks_per_query"] >= last / 4

    # Timed unit: one routed answer at the top sweep point.
    replica = FilterReplica("r", cache_capacity=0, routing=True)
    for block in range(top):
        replica.load_directly(_block_filter(block), site_entries[block])
    sample = SearchRequest("o=xyz", Scope.SUB, "(serialNumber=004201US)")
    benchmark(lambda: replica.answer(sample))


# ----------------------------------------------------------------------
# E18b — prescreened answering at 10^5 stored filters (docs/ROUTING.md
# §10): the AMQ prescreens must keep the per-answer cost flat from the
# routed sweep's top (500) up to the 50k rung, with containment checks
# per query independent of the population.
# ----------------------------------------------------------------------
PRESCREEN_REF = 500
PRESCREEN_RUNG = 50_000
# The 200k/500k rungs take minutes and gigabytes; they are opt-in for
# the nightly-scale run, not the per-PR smoke.
FULL_SWEEP_ENV = "REPLICA_SCALING_FULL_SWEEP"
PRESCREEN_QUERIES = 400
# Best of 9 (min-time estimator, see TIMING_REPEATS above): the ref
# point's timed window is ~15ms, the jitteriest gated metric in the
# suite, so it gets the most chances to land an unstolen pass.
PRESCREEN_REPEATS = 9


def _wide_filter(block: int) -> SearchRequest:
    """Six-digit site-block filters — room for a 10^6 population."""
    return SearchRequest("o=xyz", Scope.SUB, f"(serialNumber={block:06d}*US)")


def _wide_person(block: int) -> Entry:
    cn = f"w{block:06d}"
    return Entry(
        f"cn={cn},o=xyz",
        {
            "objectClass": ["person"],
            "cn": cn,
            "sn": f"s{block % 37}",
            "serialNumber": [f"{block:06d}77US"],
        },
    )


def _prescreen_point(n_filters: int, amq: bool) -> Dict[str, float]:
    """Answer a 50/50 hit/miss mix over *n_filters* stored filters.

    Hits are per-block equality serials (contained in exactly one
    stored filter); misses are serials from blocks past the population
    (contained in none — the case the prescreens exist for).  Serials
    are distinct per query *and per pass*, so neither the QC pair
    cache, the routing memo, nor the negative result caches can answer
    from an earlier pass's work; what remains is the per-answer routing
    cost the flatness floor guards.
    """
    replica = FilterReplica("r", cache_capacity=0, amq=amq)
    for block in range(n_filters):
        replica.load_directly(_wide_filter(block), [_wide_person(block)])
    rates = []
    passes = 1 + PRESCREEN_REPEATS  # warm-up + timed repeats
    for rep in range(passes):
        base = rep * PRESCREEN_QUERIES
        queries = []
        for i in range(PRESCREEN_QUERIES):
            serial = base + i
            if i % 2 == 0:
                block = (serial * 7919) % n_filters
            else:
                block = 999_999 - (serial % 99_999)  # past any population
            queries.append(
                SearchRequest(
                    "o=xyz",
                    Scope.SUB,
                    f"(serialNumber={block:06d}{serial % 10_000:04d}US)",
                )
            )
        clear_containment_cache()
        with _quiesced():
            start = time.perf_counter()
            hits = sum(1 for q in queries if replica.answer(q).is_hit)
            elapsed = time.perf_counter() - start
        assert hits == PRESCREEN_QUERIES // 2
        if rep:  # pass 0 is the warm-up
            rates.append(PRESCREEN_QUERIES / elapsed if elapsed else 0.0)
    routing_amq = replica._index.amq if replica._index is not None else None
    point = {
        "rate": max(rates),  # best pass: min-time estimator (see TIMING_REPEATS)
        "checks_per_query": replica.containment_checks
        / (passes * PRESCREEN_QUERIES),
        "amq_items": float(routing_amq.items) if routing_amq else 0.0,
        # Per-pass, so the committed count does not scale with
        # PRESCREEN_REPEATS (items/extensions/fpr are population
        # properties and need no normalization).
        "amq_negatives": routing_amq.negatives / passes if routing_amq else 0.0,
        "amq_extensions": float(routing_amq.extensions) if routing_amq else 0.0,
        "amq_fpr": routing_amq.fpr() if routing_amq else 0.0,
    }
    del replica
    return point


def test_replica_scaling_prescreen(benchmark):
    rungs = [PRESCREEN_REF, PRESCREEN_RUNG]
    if os.environ.get(FULL_SWEEP_ENV):
        rungs += [200_000, 500_000]
    points = {}
    rows = []
    for n in rungs:
        on = _prescreen_point(n, amq=True)
        off = _prescreen_point(n, amq=False)
        points[n] = (on, off)
        rows.append(
            (
                n,
                on["rate"],
                off["rate"],
                on["checks_per_query"],
                on["amq_items"],
                on["amq_negatives"],
                on["amq_fpr"],
            )
        )

    ref_on = points[PRESCREEN_REF][0]
    rung_on, rung_off = points[PRESCREEN_RUNG]
    metrics = {
        # Gated rates (validate_results: lower is a regression).
        "prescreen_ref_per_s": ref_on["rate"],
        "prescreen_50k_per_s": rung_on["rate"],
        # Informational context for the baseline diff.
        "prescreen_50k_off_rate": rung_off["rate"],
        "flatness_50k_vs_ref": rung_on["rate"] / ref_on["rate"],
        "checks_per_query_at_50k": rung_on["checks_per_query"],
        "amq_items_at_50k": rung_on["amq_items"],
        "amq_negatives_at_50k": rung_on["amq_negatives"],
        "amq_fpr_at_50k": rung_on["amq_fpr"],
    }
    report(
        "replica_scaling_prescreen",
        f"Prescreened answering, 50/50 hit-miss mix, {PRESCREEN_QUERIES} "
        f"queries per pass, best of {PRESCREEN_REPEATS}",
        ["size", "amq/s", "off/s", "chk/q", "amq_n", "amq_neg", "amq_fpr"],
        rows,
        params={
            "ref": PRESCREEN_REF,
            "rung": PRESCREEN_RUNG,
            "queries_per_pass": PRESCREEN_QUERIES,
            "timing_repeats": PRESCREEN_REPEATS,
            "full_sweep": bool(os.environ.get(FULL_SWEEP_ENV)),
        },
        metrics=metrics,
        paper_expected={
            "shape": "per-answer cost flat from 500 to 50k stored filters; "
            "containment checks per query independent of the population"
        },
    )

    # Flatness floor (machine-independent: both points are measured by
    # the same function in the same process): 100x the population may
    # cost at most 2x the per-answer time.
    assert rung_on["rate"] >= ref_on["rate"] / 2.0, (
        "prescreened answering is not flat: "
        f"{rung_on['rate']:.0f}/s at {PRESCREEN_RUNG} vs "
        f"{ref_on['rate']:.0f}/s at {PRESCREEN_REF}"
    )
    for n in rungs:
        if n <= PRESCREEN_REF:
            continue
        on, _ = points[n]
        # ~1 containment check per hit, none per prescreened miss; any
        # population dependence would blow through this ceiling.
        assert on["checks_per_query"] <= 2.0
        # The routing AMQ is active and actually screening at scale.
        assert on["amq_items"] > 0
        assert on["amq_negatives"] > 0

    # Timed unit: one prescreened miss at the rung.
    replica = FilterReplica("r", cache_capacity=0)
    for block in range(PRESCREEN_RUNG):
        replica.load_directly(_wide_filter(block), [_wide_person(block)])
    sample = SearchRequest("o=xyz", Scope.SUB, "(serialNumber=99990000US)")
    benchmark(lambda: replica.answer(sample))


# ----------------------------------------------------------------------
# E18c — live persist sessions at 10^3..10^4 on the pipelined transport
# (docs/TRANSPORT.md): §5.2's connection-scaling worry.  The routed
# sweep above caps at 500 poll sessions; this rung ladder drives the
# batched fan-out (bench_persist_fanout's replay workload) at 500 and
# 5000 live persist sessions — 10000 on the opt-in full sweep — and
# checks that *delivered-notification* throughput stays flat: widening
# the fan-out 10x may not shrink the per-notification rate below half.
# ----------------------------------------------------------------------
SESSION_RUNGS = (500, 5000)
SESSION_P99_BOUND_MS = 5.0


def test_replica_scaling_sessions(benchmark):
    from .bench_persist_fanout import (
        BLOCKS as FANOUT_BLOCKS,
        _fanout_point,
        _make_update_records,
    )

    rungs = list(SESSION_RUNGS)
    if os.environ.get(FULL_SWEEP_ENV):
        rungs.append(10_000)
    records = _make_update_records()
    points = {}
    rows = []
    for n in rungs:
        point, _ = _fanout_point(records, n, pipelined=True)
        # Delivered-notification rate: each update notifies the target
        # block's subscribers (n / FANOUT_BLOCKS live sessions).
        point["notified_per_s"] = point["rate"] * (n / FANOUT_BLOCKS)
        points[n] = point
        rows.append(
            (
                n,
                point["rate"],
                point["notified_per_s"],
                point["coalescing"],
                point["p99_ms"],
            )
        )

    ref, top = rungs[0], rungs[-1]
    metrics = {
        # Gated rates (validate_results: lower is a regression).
        "sessions_top_updates_per_s": points[SESSION_RUNGS[-1]]["rate"],
        "sessions_top_notified_per_s": points[SESSION_RUNGS[-1]]["notified_per_s"],
        # Informational context for the baseline diff.
        "sessions_ref_updates_per_s": points[ref]["rate"],
        "sessions_ref_notified_per_s": points[ref]["notified_per_s"],
        "sessions_top_p99_virtual_ms": points[SESSION_RUNGS[-1]]["p99_ms"],
    }
    report(
        "replica_scaling_sessions",
        f"Pipelined persist fan-out at {'/'.join(str(n) for n in rungs)} "
        f"live sessions, {len(records)} updates per pass",
        ["sessions", "upd/s", "notif/s", "coalesce", "p99_ms"],
        rows,
        params={
            "rungs": "/".join(str(n) for n in rungs),
            "blocks": FANOUT_BLOCKS,
            "full_sweep": bool(os.environ.get(FULL_SWEEP_ENV)),
        },
        metrics=metrics,
        paper_expected={
            "shape": "delivered-notification throughput flat as live "
            "persist sessions grow 10x; delivery p99 bounded by the batch "
            "window at every rung"
        },
    )

    # Flatness floor (machine-independent: same function, same process):
    # 10x (or 20x) the live sessions may not halve the per-notification
    # rate, and the virtual-clock latency bound holds at every rung.
    for n in rungs:
        if n == ref:
            continue
        assert points[n]["notified_per_s"] >= points[ref]["notified_per_s"] / 2.0, (
            f"per-notification throughput collapsed at {n} sessions: "
            f"{points[n]['notified_per_s']:.0f}/s vs "
            f"{points[ref]['notified_per_s']:.0f}/s at {ref}"
        )
    for n in rungs:
        assert points[n]["p99_ms"] <= SESSION_P99_BOUND_MS

    # Timed unit: one replayed update at the top default rung's batch
    # config (self-contained single-session net).
    from repro.server import SimulatedNetwork
    from repro.sync import SyncedContent
    from .bench_persist_fanout import BATCH, _block_filter, _fresh_master

    net = SimulatedNetwork(pipelined=True, batch=BATCH, seed=7)
    master = _fresh_master()
    net.register(master)
    provider = ResyncProvider(master)
    content = SyncedContent(_block_filter(0), network=net)
    deliveries, _handle = net.persist_exchange(
        provider, _block_filter(0), content.apply_notification
    )
    content.apply(deliveries[-1].response)
    record = records[0]

    def unit():
        provider.on_update(record)
        net.settle()

    benchmark(unit)
