"""LDAP filter containment (§4.1, Propositions 1–3).

A filter ``F1`` is *contained* in ``F2`` when no entry can satisfy
``F1`` but not ``F2``.  Deciding this in general is NP-complete in the
query size [11], so the paper trades completeness for tractability:

* :func:`predicate_contained_in` — the assertion-value comparison table
  underlying Proposition 2: each condition is a simple ``(a ⋚ b)``
  comparison between assertion values of the two filters.  Substring
  assertions are interpreted as range assertions (anchored prefixes
  bound the value lexicographically), per the §4.1 extension.
* :func:`filter_contained_in` — structural containment for positive
  filters: sound recursion over AND/OR covering both the same-template
  case (Proposition 3: predicate-wise containment, ``O(n)`` value
  comparisons) and the cross-template conditions of Proposition 2.
* :func:`general_contained_in` — Proposition 1: ``F1 ∧ ¬F2`` is
  expanded to DNF and every conjunct must be proved inconsistent.  Used
  as the expensive general fallback and by the E12 cost-comparison
  bench.

Everything here is **sound but incomplete**: ``True`` always implies
semantic containment (property-tested against random entries); a
``False`` may merely mean "could not prove it".  Incompleteness only
costs replicas hit-ratio, never correctness.

Multi-valued attributes are respected: an entry satisfies ``(a=1)(a=2)``
when it holds both values, so positive predicates on one attribute are
never declared mutually inconsistent unless the attribute is
single-valued by schema.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence

from ..ldap.attributes import AttributeRegistry, AttributeType, DEFAULT_REGISTRY
from ..ldap.filters import (
    And,
    Approx,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Predicate,
    Present,
    Substring,
    simplify,
    to_dnf,
)
from ..ldap.matching import compare_values, substring_match

__all__ = [
    "predicate_contained_in",
    "filter_contained_in",
    "general_contained_in",
    "prefix_upper_bound",
]


def prefix_upper_bound(prefix: str) -> str:
    """Smallest string greater than every string with *prefix*.

    Interprets an anchored substring assertion as a range (§4.1): every
    value starting with ``p`` satisfies ``p <= value < prefix_upper_bound(p)``
    lexicographically.
    """
    if not prefix:
        raise ValueError("empty prefix has no upper bound")
    return prefix[:-1] + chr(ord(prefix[-1]) + 1)


# ----------------------------------------------------------------------
# predicate-level containment (the comparisons of Proposition 2)
# ----------------------------------------------------------------------
def predicate_contained_in(
    p1: Predicate,
    p2: Predicate,
    registry: Optional[AttributeRegistry] = None,
) -> bool:
    """True when every value satisfying *p1* satisfies *p2*.

    This is value-level containment: sound also for multi-valued
    attributes, because "the entry has a value satisfying p1" then
    implies "the entry has a value satisfying p2".
    """
    reg = registry if registry is not None else DEFAULT_REGISTRY
    if p1.attr_key != p2.attr_key:
        return False
    atype = reg.get(p1.attr)

    if isinstance(p2, Present):
        return True  # any assertion implies the attribute is present
    if isinstance(p1, Present):
        return False  # presence guarantees no particular value

    if isinstance(p2, Equality):
        if isinstance(p1, Equality):
            return compare_values(atype, p1.value, p2.value) == 0
        return False  # ranges/substrings admit more than one value

    if isinstance(p2, Approx) or isinstance(p1, Approx):
        # Approximate matching is server-defined; only identical
        # assertions are safely comparable.
        return (
            type(p1) is type(p2)
            and isinstance(p1, Approx)
            and compare_values(atype, p1.value, p2.value) == 0
        )

    if isinstance(p2, GreaterOrEqual):
        if isinstance(p1, Equality):
            return compare_values(atype, p1.value, p2.value) >= 0
        if isinstance(p1, GreaterOrEqual):
            return compare_values(atype, p1.value, p2.value) >= 0
        if isinstance(p1, Substring) and p1.initial:
            # value >= initial (lexicographically), so initial >= bound
            # suffices.  Only valid for string ordering.
            if _string_ordered(atype):
                return str(atype.normalize(p1.initial)) >= str(
                    atype.normalize(p2.value)
                )
        return False

    if isinstance(p2, LessOrEqual):
        if isinstance(p1, Equality):
            return compare_values(atype, p1.value, p2.value) <= 0
        if isinstance(p1, LessOrEqual):
            return compare_values(atype, p1.value, p2.value) <= 0
        if isinstance(p1, Substring) and p1.initial:
            if _string_ordered(atype):
                bound = prefix_upper_bound(str(atype.normalize(p1.initial)))
                return bound <= str(atype.normalize(p2.value))
        return False

    if isinstance(p2, Substring):
        if isinstance(p1, Equality):
            return substring_match(
                atype, p1.value, p2.initial, p2.any_parts, p2.final
            )
        if isinstance(p1, Substring):
            return _substring_contained_in(p1, p2, atype)
        return False

    return False  # pragma: no cover - all predicate kinds handled


def _string_ordered(atype: AttributeType) -> bool:
    """True when the attribute's ordering is plain string ordering."""
    return atype.ordered and isinstance(atype.normalize("a"), str)


def _substring_contained_in(
    s1: Substring, s2: Substring, atype: AttributeType
) -> bool:
    """Sound embedding test: every value matching *s1* matches *s2*.

    *s2*'s components must be guaranteed by *s1*'s:

    * ``s2.initial`` must be a prefix of ``s1.initial``,
    * ``s2.final`` must be a suffix of ``s1.final``,
    * each ``s2.any_part`` must occur, in order, inside the *guaranteed
      text blocks* of *s1* (a component of s1 is a contiguous block that
      every matching value contains; text spanning two blocks is not
      guaranteed).

    Handles the paper's generalization chains such as
    ``(serialNumber=0456*) ⊆ (serialNumber=04*)`` and
    ``(serialNumber=04*56) ⊆ (serialNumber=0*6)``.
    """

    def norm(text: str) -> str:
        return str(atype.normalize(text)) if text else ""

    init1, init2 = norm(s1.initial), norm(s2.initial)
    fin1, fin2 = norm(s1.final), norm(s2.final)
    if init2 and not init1.startswith(init2):
        return False
    if fin2 and not fin1.endswith(fin2):
        return False

    # Guaranteed blocks of s1, with the parts of init1/fin1 not already
    # consumed by init2/fin2 available for embedding any-parts.
    blocks: List[str] = []
    blocks.append(init1[len(init2):])
    blocks.extend(norm(p) for p in s1.any_parts)
    final_block = fin1[: len(fin1) - len(fin2)] if fin2 else fin1
    blocks.append(final_block)

    block_index = 0
    offset = 0
    for part in (norm(p) for p in s2.any_parts):
        if not part:
            continue
        placed = False
        while block_index < len(blocks):
            found = blocks[block_index].find(part, offset)
            if found >= 0:
                offset = found + len(part)
                placed = True
                break
            block_index += 1
            offset = 0
        if not placed:
            return False
    return True


# ----------------------------------------------------------------------
# structural containment for positive filters (Propositions 2 & 3)
# ----------------------------------------------------------------------
def filter_contained_in(
    f1: Filter,
    f2: Filter,
    registry: Optional[AttributeRegistry] = None,
) -> bool:
    """True when *f1* is provably contained in *f2* (sound, incomplete).

    The recursion mirrors the logical structure:

    * ``f1 ⊆ (& q…)``  ⇔ f1 contained in every conjunct,
    * ``(| p…) ⊆ f2``  ⇔ every disjunct contained in f2,
    * ``f1 ⊆ (| q…)``  ⇐ f1 contained in some disjunct,
    * ``(& p…) ⊆ q``   ⇐ some conjunct contained in q,
    * leaf ⊆ leaf     ⇔ :func:`predicate_contained_in`,
    * ``(!p) ⊆ (!q)``  ⇔ q ⊆ p.

    Same-template filters resolve entirely through the first, fourth and
    fifth rules — exactly Proposition 3's predicate-wise comparison.

    Default-registry results are memoized (filters are immutable).
    """
    if registry is None:
        return _filter_contained_in_cached(f1, f2)
    return _contained(simplify(f1), simplify(f2), registry)


@lru_cache(maxsize=262_144)
def _filter_contained_in_cached(f1: Filter, f2: Filter) -> bool:
    return _contained(simplify(f1), simplify(f2), DEFAULT_REGISTRY)


def _contained(f1: Filter, f2: Filter, reg: AttributeRegistry) -> bool:
    if f1 == f2:
        return True
    # Disjunction on the left: every branch must be contained.
    if isinstance(f1, Or):
        return all(_contained(child, f2, reg) for child in f1.children)
    # Conjunction on the right: must be contained in every conjunct.
    if isinstance(f2, And):
        return all(_contained(f1, child, reg) for child in f2.children)
    # Disjunction on the right: contained in some branch suffices.
    if isinstance(f2, Or):
        if any(_contained(f1, child, reg) for child in f2.children):
            return True
        return False
    # Conjunction on the left: some conjunct contained in f2 suffices.
    if isinstance(f1, And):
        return any(_contained(child, f2, reg) for child in f1.children)
    if isinstance(f1, Not) and isinstance(f2, Not):
        return _contained(f2.child, f1.child, reg)
    if isinstance(f1, Predicate) and isinstance(f2, Predicate):
        return predicate_contained_in(f1, f2, reg)
    return False


# ----------------------------------------------------------------------
# Proposition 1: general containment via DNF inconsistency
# ----------------------------------------------------------------------
def general_contained_in(
    f1: Filter,
    f2: Filter,
    registry: Optional[AttributeRegistry] = None,
    max_terms: int = 4096,
) -> bool:
    """Proposition 1 check: ``F1 ∧ ¬F2`` must be inconsistent.

    Expands ``F1 ∧ ¬F2`` into DNF ``B1 ∨ … ∨ Bk`` and proves every
    ``Bi`` inconsistent.  A conjunct is proved inconsistent when it
    contains a positive predicate P and a negative literal ¬Q on the
    same attribute with P's values contained in Q's (the entry would
    both have and lack a Q-satisfying value), or a positive predicate
    together with ¬(attr=*).  This criterion stays sound for
    multi-valued attributes, where an "empty intersection" of two
    positive predicates proves nothing.

    Exponential in the worst case (raises :class:`OverflowError` past
    *max_terms*), which is precisely the cost Propositions 2/3 avoid.
    """
    reg = registry if registry is not None else DEFAULT_REGISTRY
    expression = And((f1, Not(f2)))
    conjunctions = to_dnf(expression, max_terms=max_terms)
    return all(_conjunct_inconsistent(b, reg) for b in conjunctions)


def _conjunct_inconsistent(literals: Sequence[Filter], reg: AttributeRegistry) -> bool:
    positives: List[Predicate] = []
    negatives: List[Predicate] = []
    for literal in literals:
        if isinstance(literal, Not):
            child = literal.child
            if isinstance(child, Predicate):
                negatives.append(child)
        elif isinstance(literal, Predicate):
            positives.append(literal)
    for p in positives:
        for q in negatives:
            if p.attr_key != q.attr_key:
                continue
            if isinstance(q, Present):
                # ¬(attr=*) says the attribute is absent; any positive
                # assertion on it is then unsatisfiable.
                return True
            if predicate_contained_in(p, q, reg):
                # Some value must satisfy p ⊆ q, yet no value may
                # satisfy q.
                return True
    return False
