"""Synthetic enterprise directory generator.

Stands in for the paper's evaluation substrate — the IBM enterprise
directory of §7.1 ("more than half a million employee and
organizational records", employee entries ≈6KB) — preserving every
structural property the algorithms are sensitive to:

* employees organized **by country**, all employees of a country flat
  under the country entry (the §3.3 flat namespace);
* one *geography* (a set of countries) holding ≈30% of employees — the
  remote region the partial replica serves;
* ``serialNumber`` values structured ``<block:4><seq:2><CC:2>``:
  consecutive site blocks are allocated within a country, so the serial
  prefix encodes spatial/organizational locality while the suffix names
  the country — exactly the organization that makes the paper's
  ``(serialnumber=_*_)`` generalized filters work;
* ``mail`` = ``<uid>@<cc>.xyz.com`` with an **unorganized local part**
  (§7.2(c): no useful generalization exists for it);
* department entries under division entries, department numbers sharing
  their division's prefix (semantic locality across countries, §3.1.2);
* a small location subtree with a high access rate (§7.2(c));
* entry sizes stamped (≈6KB employees) so byte-level traffic metrics
  scale like the paper's without storing filler data.

Scale is configurable; defaults are laptop-sized (thousands of entries)
— the replication results depend on structure and skew, not on the
absolute half-million.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ldap.dn import DN
from ..ldap.entry import Entry

__all__ = [
    "GeographyConfig",
    "DirectoryConfig",
    "EnterpriseDirectory",
    "generate_directory",
    "CarrierConfig",
    "CarrierDirectory",
    "generate_carrier_directory",
]

_SYLLABLES = (
    "an", "ar", "el", "in", "ka", "la", "ma", "na", "or", "ra",
    "sa", "ta", "ur", "va", "vi", "yo", "zu", "be", "do", "mi",
)

ORG_SUFFIX = "o=xyz"


@dataclass(frozen=True)
class GeographyConfig:
    """One geography: a name and the countries (with employee shares)."""

    name: str
    countries: Tuple[Tuple[str, float], ...]
    """(country code, fraction of ALL employees) pairs."""

    @property
    def share(self) -> float:
        return sum(fraction for _cc, fraction in self.countries)


def _default_geographies() -> Tuple[GeographyConfig, ...]:
    """Three geographies; AP holds ≈30% of employees (§7.1)."""
    return (
        GeographyConfig(
            "AP", (("in", 0.18), ("cn", 0.06), ("jp", 0.04), ("au", 0.02))
        ),
        GeographyConfig(
            "AM", (("us", 0.30), ("ca", 0.05), ("br", 0.05))
        ),
        GeographyConfig(
            "EU", (("de", 0.12), ("fr", 0.08), ("uk", 0.10))
        ),
    )


@dataclass(frozen=True)
class DirectoryConfig:
    """Knobs of the synthetic directory.

    ``employees_per_block`` bounds how many employees share one
    4-digit serialNumber site block (the unit the ``_*_`` generalized
    filters replicate).
    """

    employees: int = 10_000
    geographies: Tuple[GeographyConfig, ...] = field(
        default_factory=_default_geographies
    )
    divisions: int = 8
    departments_per_division: int = 40
    locations: int = 120
    employees_per_block: int = 30
    employee_entry_bytes: int = 6_000
    org_entry_bytes: int = 1_000
    seed: int = 20050607  # ICDCS 2005 vintage


@dataclass
class EnterpriseDirectory:
    """The generated directory plus the metadata workloads sample from."""

    config: DirectoryConfig
    entries: List[Entry]
    employees_by_country: Dict[str, List[Entry]]
    departments: List[Entry]
    locations: List[Entry]
    blocks_by_country: Dict[str, List[str]]
    """serialNumber 4-digit block prefixes allocated to each country."""

    @property
    def suffix(self) -> str:
        return ORG_SUFFIX

    @property
    def employee_count(self) -> int:
        return sum(len(v) for v in self.employees_by_country.values())

    def countries(self) -> List[str]:
        return sorted(self.employees_by_country)

    def geography_countries(self, name: str) -> List[str]:
        for geo in self.config.geographies:
            if geo.name == name:
                return [cc for cc, _f in geo.countries]
        raise KeyError(f"unknown geography {name!r}")

    def geography_employees(self, name: str) -> List[Entry]:
        out: List[Entry] = []
        for cc in self.geography_countries(name):
            out.extend(self.employees_by_country.get(cc, ()))
        return out

    def all_employees(self) -> List[Entry]:
        out: List[Entry] = []
        for cc in sorted(self.employees_by_country):
            out.extend(self.employees_by_country[cc])
        return out


def _name(rng: random.Random) -> str:
    return "".join(rng.choice(_SYLLABLES) for _ in range(rng.randint(2, 3))).title()


# ----------------------------------------------------------------------
# carrier directory (§3.3: very flat DN namespaces)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CarrierConfig:
    """Knobs of the §3.3 carrier (telco) directory.

    "Carrier directories used by large telcos can have all their
    subscribers (millions of entries) under a single container entry" —
    scaled down, structure preserved: every subscriber is a direct
    child of ``ou=subscribers``, with MSISDNs allocated in exchange
    prefixes so filter replication has something to select on.
    """

    subscribers: int = 5_000
    prefix_digits: int = 6  # exchange prefix length of the 10-digit MSISDN
    subscribers_per_prefix: int = 100
    entry_bytes: int = 800
    seed: int = 33


@dataclass
class CarrierDirectory:
    """The generated carrier DIT plus sampling metadata."""

    config: CarrierConfig
    entries: List[Entry]
    subscribers: List[Entry]
    prefixes: List[str]

    @property
    def suffix(self) -> str:
        return "o=telco"

    @property
    def container_dn(self) -> str:
        return "ou=subscribers,o=telco"


def generate_carrier_directory(config: Optional[CarrierConfig] = None) -> CarrierDirectory:
    """Generate the flat-namespace carrier directory of §3.3."""
    cfg = config if config is not None else CarrierConfig()
    rng = random.Random(cfg.seed)
    entries: List[Entry] = [
        Entry("o=telco", {"objectClass": ["organization", "top"], "o": "telco"}),
        Entry(
            "ou=subscribers,o=telco",
            {"objectClass": ["organizationalUnit", "top"], "ou": "subscribers"},
        ),
    ]
    container = DN.parse("ou=subscribers,o=telco")
    subscribers: List[Entry] = []
    prefixes: List[str] = []
    prefix_value = 910_000
    line = 0
    capacity = 0
    prefix = ""
    for i in range(cfg.subscribers):
        if line >= capacity:
            prefix = str(prefix_value)[: cfg.prefix_digits]
            prefix_value += 1
            prefixes.append(prefix)
            capacity = rng.randint(
                cfg.subscribers_per_prefix // 2, cfg.subscribers_per_prefix
            )
            line = 0
        msisdn = f"{prefix}{line:0{10 - cfg.prefix_digits}d}"
        line += 1
        name = _name(rng)
        subscriber = Entry(
            container.child(f"uid=s{i}"),
            {
                "objectClass": ["inetOrgPerson", "person", "top"],
                "uid": f"s{i}",
                "cn": f"{name} {i}",
                "sn": name,
                "telephoneNumber": msisdn,
                "entrySizeBytes": cfg.entry_bytes,
            },
        )
        subscribers.append(subscriber)
        entries.append(subscriber)
    return CarrierDirectory(
        config=cfg, entries=entries, subscribers=subscribers, prefixes=prefixes
    )


def generate_directory(config: Optional[DirectoryConfig] = None) -> EnterpriseDirectory:
    """Generate the synthetic enterprise directory deterministically."""
    cfg = config if config is not None else DirectoryConfig()
    rng = random.Random(cfg.seed)
    entries: List[Entry] = []

    root = Entry(ORG_SUFFIX, {"objectClass": ["organization", "top"], "o": "xyz"})
    entries.append(root)

    # ------------------------------------------------------------------
    # organizational containers
    # ------------------------------------------------------------------
    divisions_base = DN.parse(f"ou=divisions,{ORG_SUFFIX}")
    entries.append(
        Entry(divisions_base, {"objectClass": ["organizationalUnit", "top"], "ou": "divisions"})
    )
    locations_base = DN.parse(f"ou=locations,{ORG_SUFFIX}")
    entries.append(
        Entry(locations_base, {"objectClass": ["organizationalUnit", "top"], "ou": "locations"})
    )

    # Divisions and departments.  Department numbers share the division
    # prefix: division d=3 owns departments 3400..34xx ("240*"-style
    # semantic locality, §3.1.2).
    departments: List[Entry] = []
    division_numbers: List[str] = []
    for d in range(cfg.divisions):
        div_number = f"{d + 2}0"
        division_numbers.append(div_number)
        div_dn = divisions_base.child(f"ou=div{div_number}")
        entries.append(
            Entry(
                div_dn,
                {
                    "objectClass": ["organizationalUnit", "division", "top"],
                    "ou": f"div{div_number}",
                    "divisionNumber": div_number,
                    "entrySizeBytes": cfg.org_entry_bytes,
                },
            )
        )
        for k in range(cfg.departments_per_division):
            dept_number = f"{div_number}{k:02d}"
            dept_dn = div_dn.child(f"departmentNumber={dept_number}")
            dept = Entry(
                dept_dn,
                {
                    "objectClass": ["department", "top"],
                    "departmentNumber": dept_number,
                    "divisionNumber": div_number,
                    "description": f"department {dept_number}",
                    "entrySizeBytes": cfg.org_entry_bytes,
                },
            )
            departments.append(dept)
            entries.append(dept)

    # Locations: small, flat, hot (§7.2(c)).
    locations: List[Entry] = []
    for i in range(cfg.locations):
        loc_name = f"site{i:03d}"
        loc_dn = locations_base.child(f"l={loc_name}")
        loc = Entry(
            loc_dn,
            {
                "objectClass": ["location", "top"],
                "l": loc_name,
                "buildingName": f"bldg{i % 30:02d}",
                "entrySizeBytes": cfg.org_entry_bytes // 2,
            },
        )
        locations.append(loc)
        entries.append(loc)

    # ------------------------------------------------------------------
    # countries and employees (flat under the country entry, §3.3)
    # ------------------------------------------------------------------
    employees_by_country: Dict[str, List[Entry]] = {}
    blocks_by_country: Dict[str, List[str]] = {}
    next_block = 1  # 4-digit site blocks allocated sequentially
    uid_counter = 0

    country_shares: List[Tuple[str, float]] = []
    for geo in cfg.geographies:
        country_shares.extend(geo.countries)
    total_share = sum(f for _cc, f in country_shares)

    for cc, fraction in country_shares:
        count = max(1, round(cfg.employees * fraction / total_share))
        country_dn = DN.parse(f"c={cc},{ORG_SUFFIX}")
        entries.append(
            Entry(country_dn, {"objectClass": ["country", "top"], "c": cc})
        )
        bucket: List[Entry] = []
        blocks: List[str] = []
        block_capacity = 0
        block_prefix = ""
        seq_in_block = 0
        for _ in range(count):
            if seq_in_block >= block_capacity:
                block_prefix = f"{next_block:04d}"
                blocks.append(block_prefix)
                next_block += 1
                # Blocks fill to a site-dependent level below capacity.
                block_capacity = rng.randint(
                    cfg.employees_per_block // 2, cfg.employees_per_block
                )
                seq_in_block = 0
            serial = f"{block_prefix}{seq_in_block:02d}{cc.upper()}"
            seq_in_block += 1
            uid_counter += 1
            given, surname = _name(rng), _name(rng)
            uid = f"{given.lower()}{surname.lower()}{uid_counter}"
            division = rng.choice(division_numbers)
            dept = f"{division}{rng.randrange(cfg.departments_per_division):02d}"
            employee = Entry(
                country_dn.child(f"cn={given} {surname} {uid_counter}"),
                {
                    "objectClass": ["inetOrgPerson", "organizationalPerson", "person", "top"],
                    "cn": f"{given} {surname} {uid_counter}",
                    "sn": surname,
                    "givenName": given,
                    "uid": uid,
                    "mail": f"{uid}@{cc}.xyz.com",
                    "serialNumber": serial,
                    "departmentNumber": dept,
                    "divisionNumber": division,
                    "l": f"site{rng.randrange(cfg.locations):03d}",
                    "telephoneNumber": f"{rng.randrange(200, 999)}-{rng.randrange(100,999)}-{rng.randrange(1000, 9999)}",
                    "entrySizeBytes": cfg.employee_entry_bytes
                    + rng.randrange(-500, 500),
                },
            )
            bucket.append(employee)
            entries.append(employee)
        employees_by_country[cc] = bucket
        blocks_by_country[cc] = blocks

    return EnterpriseDirectory(
        config=cfg,
        entries=entries,
        employees_by_country=employees_by_country,
        departments=departments,
        locations=locations,
        blocks_by_country=blocks_by_country,
    )
