"""Property test: EntryStore indexes stay consistent under mutation.

Random sequences of put/replace/delete must leave the store in a state
where index-driven candidate search agrees with a brute-force scan for
every probe filter — the soundness condition the server's correctness
rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.ldap import DN, Entry, Scope, matches, parse_filter
from repro.server import EntryStore

NAMES = [f"e{i}" for i in range(8)]
VALUES = ["aa", "ab", "ba", "bb", "ccc"]

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(NAMES), st.sampled_from(VALUES)),
        st.tuples(st.just("delete"), st.sampled_from(NAMES), st.just("")),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=100, deadline=None)
@given(_ops, st.sampled_from(VALUES))
def test_index_scan_agreement(ops, probe):
    store = EntryStore()
    root = DN.parse("o=xyz")
    store.register_root(root)
    store.put(Entry(root, {"objectClass": ["organization"], "o": "xyz"}))

    for op, name, value in ops:
        dn = root.child(f"cn={name}")
        if op == "put":
            store.put(
                Entry(dn, {"objectClass": ["person"], "cn": name, "sn": value})
            )
        else:
            store.delete(dn)

    for flt_text in (
        f"(sn={probe})",
        f"(sn={probe[:1]}*)",
        f"(sn>={probe})",
        f"(sn<={probe})",
    ):
        flt = parse_filter(flt_text)
        truth = {e.dn for e in store.all_entries() if matches(flt, e)}
        candidates = store.candidates_for(flt)
        if candidates is not None:
            assert truth <= candidates, f"index dropped a match for {flt_text}"


@settings(max_examples=100, deadline=None)
@given(_ops)
def test_tree_structure_consistent(ops):
    """children_of and iter_scope agree with the live DN set."""
    store = EntryStore()
    root = DN.parse("o=xyz")
    store.register_root(root)
    store.put(Entry(root, {"objectClass": ["organization"], "o": "xyz"}))

    live = {root}
    for op, name, value in ops:
        dn = root.child(f"cn={name}")
        if op == "put":
            store.put(Entry(dn, {"objectClass": ["person"], "cn": name, "sn": value or "x"}))
            live.add(dn)
        else:
            store.delete(dn)
            live.discard(dn)

    assert set(store.children_of(root)) == live - {root}
    subtree = {e.dn for e in store.iter_scope(root, Scope.SUB)}
    assert subtree == live
    assert len(store) == len(live)
