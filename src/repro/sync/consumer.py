"""ReSync consumer: the replica side of filter synchronization.

A :class:`SyncedContent` holds the replicated content of one search
request (the paper's replication unit) and applies update PDUs:

* ``add`` / ``modify`` — upsert the carried entry,
* ``delete`` — drop the DN,
* ``retain`` — incomplete-history mode: after applying a retain-style
  response, everything neither retained nor upserted is discarded
  (eq. 3's reconstruction of the content).

Traffic is charged to an optional
:class:`~repro.server.network.SimulatedNetwork` so the update-traffic
experiments (Figures 6/7, E11) can read PDU and byte counts.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..ldap.controls import ReSyncControl, SyncAction, SyncMode
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.matching import compile_filter_cached
from ..ldap.query import SearchRequest
from ..obs.tracing import span
from ..server.indexes import ContentIndex
from ..server.network import (
    Delivery,
    OperationTimeout,
    SimulatedNetwork,
    TransportError,
)
from .protocol import SyncProtocolError, SyncResponse, SyncUpdate

__all__ = ["SyncedContent"]

#: Contents below this size are always evaluated by a compiled linear
#: scan — index bookkeeping costs more than it saves on tiny contents.
INDEX_MIN_ENTRIES = 24

_CONTENT_SERIALS = itertools.count(1)


class SyncedContent:
    """Replicated content of one search request at a consumer.

    Args:
        request: the replicated query (the unit of replication).
        network: optional network for traffic accounting.
        amq: forwarded to the lazily built
            :class:`~repro.server.indexes.ContentIndex` — its equality
            /DN AMQ prescreen (docs/ROUTING.md §10); ``False`` bypasses
            it for the byte-identical-evaluation oracle.
    """

    def __init__(
        self,
        request: SearchRequest,
        network: Optional[SimulatedNetwork] = None,
        amq: bool = True,
    ):
        self.request = request
        self.network = network
        self.amq = amq
        self._entries: Dict[DN, Entry] = {}
        self._index: Optional[ContentIndex] = None
        self.cookie: Optional[str] = None
        self.polls = 0
        self.updates_applied = 0
        #: Monotonic mutation counter — with :attr:`serial`, a cheap
        #: fingerprint for memoizing aggregates over this content
        #: (FilterReplica's size accounting).
        self.version = 0
        #: Process-unique identity, never reused (unlike ``id()``).
        self.serial = next(_CONTENT_SERIALS)

    # ------------------------------------------------------------------
    # content mapping (all mutations funnel through here)
    # ------------------------------------------------------------------
    @property
    def entries(self) -> Dict[DN, Entry]:
        """The replicated entries, keyed by DN (insertion-ordered).

        Reading is free-form; *replacing* the mapping through this
        property (``content.entries = {...}``) resets the attached
        :class:`~repro.server.indexes.ContentIndex` and bumps
        :attr:`version`.  In-place mutation by callers would bypass the
        index — external writers must assign, as the replica loaders do.
        """
        return self._entries

    @entries.setter
    def entries(self, mapping: Dict[DN, Entry]) -> None:
        self._entries = dict(mapping)
        self._index = None
        self.version += 1

    def _upsert(self, dn: DN, entry: Entry) -> None:
        old = self._entries.get(dn)
        self._entries[dn] = entry
        self.version += 1
        if self._index is not None:
            self._index.upsert(dn, old, entry)

    def _discard(self, dn: DN) -> None:
        old = self._entries.pop(dn, None)
        if old is None:
            return
        self.version += 1
        if self._index is not None:
            self._index.discard(dn, old)

    def _reset(self) -> None:
        self._entries = {}
        self._index = None
        self.version += 1

    # ------------------------------------------------------------------
    # applying responses
    # ------------------------------------------------------------------
    def apply(self, response: SyncResponse) -> None:
        """Apply one synchronization response to the local content.

        An ``initial`` response (null-cookie request) carries the entire
        current content, so anything held locally but absent from it is
        stale — crash recovery, session reload, re-subscription.  The
        local content is replaced *here*, only once the response has
        fully arrived: a reload whose response is lost or truncated in
        flight must leave the previous (stale but serviceable) content
        untouched (docs/PROTOCOL.md §9).
        """
        if response.initial:
            self._reset()
        retained: set = set()
        upserted: set = set()
        for update in response.updates:
            self._charge(update)
            self.updates_applied += 1
            if update.action in (SyncAction.ADD, SyncAction.MODIFY):
                self._upsert(update.dn, update.entry.copy())
                upserted.add(update.dn)
            elif update.action is SyncAction.DELETE:
                self._discard(update.dn)
            elif update.action is SyncAction.RETAIN:
                retained.add(update.dn)
        if response.uses_retain:
            keep = retained | upserted
            self.entries = {dn: e for dn, e in self._entries.items() if dn in keep}
        if response.cookie is not None:
            self.cookie = response.cookie
        self.polls += 1

    def apply_reconcile(self, response: SyncResponse, deletes) -> None:
        """Apply one reconcile fetch response plus locally derived
        deletes (docs/PROTOCOL.md §11).

        The fetched ``add`` PDUs go through the normal :meth:`apply`
        path (charged per entry, cookie adopted); *deletes* — the DNs
        the sketch decode proved absent from the master — are discarded
        locally and **uncharged**: their identities already travelled
        inside the sketch bytes, no DN PDU crosses the wire for them.
        """
        self.apply(response)
        for dn in deletes:
            self._discard(dn)

    def apply_notification(self, update: SyncUpdate) -> None:
        """Apply one persist-mode change notification."""
        if not getattr(self.network, "charges_persist_bytes", False):
            # A pipelined transport already charged the notification as
            # part of its encoded batch frame (charge_sync_batch);
            # charging the per-update estimate here would double count.
            self._charge(update)
        self.updates_applied += 1
        if update.action in (SyncAction.ADD, SyncAction.MODIFY):
            self._upsert(update.dn, update.entry.copy())
        elif update.action is SyncAction.DELETE:
            self._discard(update.dn)

    def _charge(self, update: SyncUpdate) -> None:
        if self.network is None:
            return
        if update.entry is not None:
            self.network.charge_sync_entry(update.pdu_bytes)
        else:
            self.network.charge_sync_dn(update.pdu_bytes)

    # ------------------------------------------------------------------
    # driving a provider
    # ------------------------------------------------------------------
    def poll(self, provider, timeout_ms: Optional[float] = None) -> SyncResponse:
        """One poll cycle against *provider* (any provider class).

        One full cookie round-trip: request with the resumption cookie,
        provider-side scan, response application — traced as
        ``sync.resync.cookie_round_trip``.  When a network is attached,
        the exchange is routed through its
        :meth:`~repro.server.network.SimulatedNetwork.sync_exchange`
        hook, which charges the round trip and — on a fault-injecting
        network — may raise :class:`TransportError` or deliver the
        response twice (duplicates are re-applied; every action is an
        idempotent state-setter).

        With *timeout_ms* set, deliveries arriving later than the
        timeout are discarded unapplied; if none arrive in time the
        poll raises :class:`OperationTimeout` — indistinguishable, to
        the consumer, from a lost response, and recovered the same way
        (retry with the old cookie → the provider retransmits).
        """
        with span("sync.resync.cookie_round_trip") as sp:
            control = ReSyncControl(mode=SyncMode.POLL, cookie=self.cookie)
            deliveries = self._exchange(provider, control)
            if timeout_ms is not None:
                timely = [d for d in deliveries if d.delay_ms <= timeout_ms]
                if not timely:
                    raise OperationTimeout(
                        f"no response within {timeout_ms:g}ms "
                        f"(slowest delivery {deliveries[-1].delay_ms:.0f}ms)"
                    )
                deliveries = timely
            applied = 0
            for delivery in deliveries:
                self.apply(delivery.response)
                applied += len(delivery.response.updates)
            sp.add("updates_applied", applied)
        return deliveries[-1].response

    def _exchange(self, provider, control: ReSyncControl) -> List[Delivery]:
        """Route one request/response exchange, through the network's
        fault-injection seam when a network is attached."""
        if self.network is not None:
            return self.network.sync_exchange(provider, self.request, control)
        return [Delivery(provider.handle(self.request, control))]

    def reload(self, provider, timeout_ms: Optional[float] = None) -> SyncResponse:
        """Full recovery: restart the session with a null cookie.

        The escape hatch for an expired/stale session (the server
        answers such cookies with :class:`SyncProtocolError`).  Local
        entries are *not* discarded up front: the initial response
        replaces the whole content on arrival (:meth:`apply`), so a
        reload that fails in flight leaves the previous content — stale
        but serviceable — in place.
        """
        self.cookie = None
        return self.poll(provider, timeout_ms=timeout_ms)

    def resilient_poll(self, provider, max_attempts: int = 4) -> SyncResponse:
        """Poll, recovering from protocol errors and transport faults.

        Two recovery paths, matching the fault taxonomy of
        docs/PROTOCOL.md §9:

        * :class:`SyncProtocolError` — the session is gone (expired,
          unknown or too-old cookie): fall back to a full reload
          (null cookie), the paper's §5 recovery path.
        * :class:`TransportError` — the session is fine, a message was
          lost: retry, up to *max_attempts* transport failures, without
          touching local content.  A transient fault must never wipe
          the replica (regression-tested in
          ``tests/sync/test_resilient.py``).

        Raises the last :class:`TransportError` when attempts are
        exhausted.  For backoff pacing, timeouts and degraded-mode
        handling use :class:`~repro.sync.resilient.ResilientConsumer`.
        """
        failures = 0
        while True:
            try:
                return self.poll(provider)
            except SyncProtocolError:
                if self.cookie is None:
                    raise  # a fresh session was refused — not recoverable
                self.cookie = None  # session gone: retry as a full reload
            except TransportError:
                failures += 1
                if failures >= max_attempts:
                    raise

    def end(self, provider) -> None:
        """Terminate the session at the provider (mode ``sync_end``)."""
        control = ReSyncControl(mode=SyncMode.SYNC_END, cookie=self.cookie)
        provider.handle(self.request, control)
        if self.network is not None:
            self.network.charge_round_trip()
        self.cookie = None

    # ------------------------------------------------------------------
    # local evaluation
    # ------------------------------------------------------------------
    def evaluate(self, request: SearchRequest) -> List[Entry]:
        """Entries of this content matching *request*, projected.

        Replaces the replica's interpreted full scan: the filter is
        compiled once per distinct filter
        (:func:`~repro.ldap.matching.compile_filter_cached`) and, above
        :data:`INDEX_MIN_ENTRIES`, a lazily built
        :class:`~repro.server.indexes.ContentIndex` narrows evaluation
        to a candidate set.  Candidates are re-verified and returned in
        content insertion order, so the result is identical to the
        linear scan's (the equivalence property of
        ``tests/core/test_routing_equivalence.py``).
        """
        compiled = compile_filter_cached(request.filter)
        entries = self._entries
        if len(entries) >= INDEX_MIN_ENTRIES:
            if self._index is None:
                self._index = ContentIndex(entries, amq=self.amq)
            candidates = self._index.candidates(request)
            if candidates is not None and len(candidates) < len(entries):
                seq_of = self._index.seq_of
                out: List[Entry] = []
                for dn in sorted(candidates, key=seq_of):
                    entry = entries.get(dn)
                    if entry is not None and request.in_scope(dn) and compiled(entry):
                        out.append(request.project(entry))
                return out
        return [
            request.project(entry)
            for entry in entries.values()
            if request.in_scope(entry.dn) and compiled(entry)
        ]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def amq_summary(self):
        """The content index's live AMQ summary, if one exists."""
        return self._index.amq if self._index is not None else None

    def dns(self) -> set:
        """DNs currently held."""
        return set(self.entries)

    def matches_master(self, master) -> bool:
        """Ground-truth convergence check against *master*'s live content."""
        truth = {e.dn: e for e in master.search(self.request).entries}
        if set(truth) != set(self.entries):
            return False
        return all(self.entries[dn].semantically_equal(truth[dn]) for dn in truth)

    def __len__(self) -> int:
        return len(self.entries)
