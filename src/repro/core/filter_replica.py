"""Filter based replication — the paper's proposed model (§3, §6).

A :class:`FilterReplica` stores entries satisfying one or more LDAP
queries.  For each replicated query it keeps meta information (the
search specification) and the synchronized content; an incoming query
is answered locally iff it is semantically contained in some stored
query (the ``QC`` algorithm of §4), otherwise a referral to the master
is generated.

The replica combines the three content sources of §7:

* **stored filters** — generalized queries (and whole-subtree queries
  like the location tree), kept consistent through a ReSync provider;
* **recent user queries** — an optional :class:`RecentQueryCache`
  window exploiting temporal locality (cached, never updated);
* **dynamic selection** — stored filters can be installed/discarded at
  runtime by :class:`repro.core.selection.FilterSelector` revolutions.

Template-based containment (§3.4.2) prunes the stored filters checked
per query; ``containment_checks`` counts the comparisons actually made
(the query-processing-overhead metric of §7.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.query import SearchRequest
from ..obs.tracing import span
from ..server.network import SimulatedNetwork
from ..server.operations import Referral
from ..sync.consumer import SyncedContent
from .containment import query_contained_in
from .query_cache import RecentQueryCache
from .replica import AnswerStatus, HitStats, ReplicaAnswer
from .templates import TemplateRegistry, template_key

__all__ = ["StoredFilter", "FilterReplica"]


@dataclass
class StoredFilter:
    """One replicated query: meta information plus synchronized content.

    ``sync_interval`` implements §3.2's per-object-type consistency
    levels: a filter with interval *n* is only polled every *n*-th sync
    round (1 = every round).  A subtree replica must apply the most
    stringent requirement to a whole subtree; a filter replica tunes it
    per replicated query.
    """

    request: SearchRequest
    content: SyncedContent
    key: str
    hits: int = 0
    sync_interval: int = 1

    def entry_count(self) -> int:
        return len(self.content)


class FilterReplica:
    """A partial replica whose unit of replication is an LDAP query.

    Args:
        name: replica name for diagnostics.
        master_url: referral target for misses.
        network: optional traffic accounting shared with sync.
        templates: when given, only queries belonging to the registered
            templates are considered answerable (template-based
            containment); other queries miss immediately.
        cache_capacity: size of the recent-user-query window (0 = off).
        compose_unions: extension beyond the paper's single-containment
            rule — a disjunctive query is answered when *every* disjunct
            is contained in some stored query, by uniting the per-
            disjunct evaluations.  Sound (each disjunct's answer set is
            complete) and strictly increases hit ratio.
    """

    def __init__(
        self,
        name: str,
        master_url: str = "ldap://master",
        network: Optional[SimulatedNetwork] = None,
        templates: Optional[TemplateRegistry] = None,
        cache_capacity: int = 0,
        compose_unions: bool = False,
        cache_policy: str = "fifo",
    ):
        self.name = name
        self.master_url = master_url
        self.network = network
        self.templates = templates
        self.compose_unions = compose_unions
        self.cache = RecentQueryCache(cache_capacity, policy=cache_policy)
        self._stored: Dict[SearchRequest, StoredFilter] = {}
        self._persist_handles: Dict[SearchRequest, object] = {}
        self.stats = HitStats()
        self.containment_checks = 0
        self._sync_round = 0

    # ------------------------------------------------------------------
    # stored-filter management
    # ------------------------------------------------------------------
    def add_filter(
        self,
        request: SearchRequest,
        provider=None,
        sync_interval: int = 1,
    ) -> StoredFilter:
        """Replicate *request*; polls *provider* for the initial content.

        Without a provider the filter starts empty (tests/benches may
        install content via :meth:`load_directly`).  *sync_interval*
        sets this filter's consistency level (§3.2): poll every n-th
        sync round.
        """
        if sync_interval < 1:
            raise ValueError("sync_interval must be >= 1")
        if request in self._stored:
            return self._stored[request]
        stored = StoredFilter(
            request=request,
            content=SyncedContent(request, network=self.network),
            key=template_key(request.filter),
            sync_interval=sync_interval,
        )
        if provider is not None:
            stored.content.poll(provider)
        self._stored[request] = stored
        return stored

    def remove_filter(self, request: SearchRequest, provider=None) -> None:
        """Discard a replicated query (ending its sync session)."""
        stored = self._stored.pop(request, None)
        handle = self._persist_handles.pop(request, None)
        if handle is not None:
            handle.abandon()
            if self.network is not None:
                self.network.connection_closed()
        if stored is not None and provider is not None and stored.content.cookie:
            stored.content.end(provider)

    def load_directly(self, request: SearchRequest, entries: Sequence[Entry]) -> StoredFilter:
        """Install a stored filter's content without a provider."""
        stored = self.add_filter(request)
        stored.content.entries = {e.dn: e.copy() for e in entries}
        return stored

    def stored_filters(self) -> List[StoredFilter]:
        return list(self._stored.values())

    def holds(self, request: SearchRequest) -> bool:
        return request in self._stored

    @property
    def filter_count(self) -> int:
        """Stored filters + cached queries (Figures 8/9's x-axis)."""
        return len(self._stored) + len(self.cache)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def subscribe_persist(self, provider) -> int:
        """Switch every stored filter to persist-mode ReSync (§5.2).

        Persistent search gives strong consistency — every master change
        is applied to the replica the moment it commits — but costs one
        open connection *per replicated filter*, the scaling concern the
        paper raises.  Connections are accounted on the replica's
        network; returns the number opened.

        Filters already holding a poll cookie resume their session, so
        no content is retransmitted.
        """
        opened = 0
        for stored in self._stored.values():
            if stored.request in self._persist_handles:
                continue
            response, handle = provider.persist(
                stored.request,
                stored.content.apply_notification,
                cookie=stored.content.cookie,
            )
            for update in response.updates:
                stored.content.apply_notification(update)
            stored.content.cookie = None  # session is now connection-bound
            self._persist_handles[stored.request] = handle
            if self.network is not None:
                self.network.connection_opened()
            opened += 1
        return opened

    def unsubscribe_persist(self) -> None:
        """Abandon all persist sessions (back to polling mode)."""
        for handle in self._persist_handles.values():
            handle.abandon()
            if self.network is not None:
                self.network.connection_closed()
        self._persist_handles.clear()

    @property
    def persist_connections(self) -> int:
        """Open persist-mode connections (one per subscribed filter)."""
        return len(self._persist_handles)

    def sync(self, provider) -> None:
        """One sync round: poll every stored filter that is due.

        A filter with ``sync_interval`` n is polled on every n-th round
        (per-object-type consistency levels, §3.2).
        """
        self._sync_round += 1
        for stored in self._stored.values():
            if self._sync_round % stored.sync_interval == 0:
                stored.content.poll(provider)

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def answer(self, request: SearchRequest) -> ReplicaAnswer:
        """Answer *request* locally or refer to the master.

        Order: template admission check, stored filters (template-pruned
        containment), then the recent-query cache.  Traced as
        ``core.replica.answer`` (no-op without a collector).
        """
        with span("core.replica.answer") as sp:
            result = self._answer(request)
            sp.add("hit", 1 if result.status is AnswerStatus.HIT else 0)
        return result

    def _answer(self, request: SearchRequest) -> ReplicaAnswer:
        qkey = template_key(request.filter)
        admitted = self._admitted(request, qkey)

        if admitted:
            for stored in self._stored.values():
                if self.templates is not None and not self.templates.may_answer(
                    stored.key, qkey
                ):
                    continue
                self.containment_checks += 1
                if query_contained_in(request, stored.request):
                    stored.hits += 1
                    answer = ReplicaAnswer(
                        AnswerStatus.HIT,
                        entries=self._evaluate(request, stored),
                        answered_by=str(stored.request),
                    )
                    self.stats.record(answer)
                    return answer

            cached = self.cache.lookup(request)
            if cached is not None:
                entries, source = cached
                answer = ReplicaAnswer(
                    AnswerStatus.HIT, entries=entries, answered_by=f"cache:{source}"
                )
                self.stats.record(answer)
                return answer

            if self.compose_unions:
                composed = self._answer_union(request)
                if composed is not None:
                    self.stats.record(composed)
                    return composed

        answer = ReplicaAnswer(
            AnswerStatus.MISS,
            referrals=[Referral(self.master_url, request.base)],
        )
        self.stats.record(answer)
        return answer

    def _answer_union(self, request: SearchRequest) -> Optional[ReplicaAnswer]:
        """Union composition: each disjunct answered by some stored query.

        Only applies to top-level OR filters.  Every disjunct's sub-query
        (same base/scope/attributes, the disjunct as filter) must be
        contained in a stored query; the answer is the DN-deduplicated
        union of the per-disjunct evaluations.
        """
        from ..ldap.filters import Or, simplify

        flt = simplify(request.filter)
        if not isinstance(flt, Or):
            return None
        merged: Dict[DN, Entry] = {}
        sources: List[str] = []
        for disjunct in flt.children:
            sub_request = request.with_filter(disjunct)
            holder: Optional[StoredFilter] = None
            for stored in self._stored.values():
                self.containment_checks += 1
                if query_contained_in(sub_request, stored.request):
                    holder = stored
                    break
            if holder is None:
                return None  # one uncovered disjunct forfeits the union
            holder.hits += 1
            for entry in self._evaluate(sub_request, holder):
                merged.setdefault(entry.dn, entry)
            sources.append(str(holder.request))
        return ReplicaAnswer(
            AnswerStatus.HIT,
            entries=list(merged.values()),
            answered_by="union:" + " + ".join(sources),
        )

    def _admitted(self, request: SearchRequest, qkey: str) -> bool:
        """Template admission: with a registry, only member queries are
        candidates for local answering."""
        if self.templates is None:
            return True
        return self.templates.classify(request.filter) is not None

    def _evaluate(self, request: SearchRequest, stored: StoredFilter) -> List[Entry]:
        """Evaluate *request* over the containing stored query's content."""
        return [
            request.project(entry)
            for entry in stored.content.entries.values()
            if request.selects(entry)
        ]

    def observe_miss(self, request: SearchRequest, entries: Sequence[Entry]) -> None:
        """Feed a master-answered query back into the recent-query cache."""
        self.cache.insert(request, entries)

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def entry_count(self, include_cache: bool = True) -> int:
        """Unique entries held (the paper's replica-size metric)."""
        dns: Set[DN] = set()
        for stored in self._stored.values():
            dns.update(stored.content.entries)
        count = len(dns)
        if include_cache:
            count += self.cache.entry_count()
        return count

    def size_bytes(self) -> int:
        """Approximate stored bytes across stored filters."""
        seen: Set[DN] = set()
        total = 0
        for stored in self._stored.values():
            for dn, entry in stored.content.entries.items():
                if dn not in seen:
                    seen.add(dn)
                    total += entry.estimated_size()
        return total

    def __repr__(self) -> str:
        return (
            f"FilterReplica({self.name!r}, {len(self._stored)} filters, "
            f"{self.entry_count()} entries)"
        )
