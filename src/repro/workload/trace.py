"""Query trace model.

A trace is the unit the evaluation consumes: an ordered list of
:class:`QueryRecord`\\ s, each a full LDAP query plus the metadata the
benches need (query type for Table 1, the target's country/division for
scoped-query variants, and the day for train/evaluate splits mirroring
the paper's two-day workload).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, TextIO

from ..ldap.query import Scope, SearchRequest

__all__ = ["QueryType", "QueryRecord", "Trace"]


class QueryType(enum.Enum):
    """The four query types of Table 1."""

    SERIAL = "serialNumber"
    MAIL = "mail"
    DEPARTMENT = "department"
    LOCATION = "location"


@dataclass(frozen=True)
class QueryRecord:
    """One traced query.

    Attributes:
        request: the query as a minimally-directory-enabled application
            issues it — base at the DIT root (§3.1.1).
        scoped_request: the same query scoped to its natural subtree
            (country / division / location tree); what a directory-aware
            application would send, and the most favourable form for
            subtree replicas.
        qtype: Table 1 query type.
        day: 1-based day index (the paper evaluated two days).
    """

    request: SearchRequest
    scoped_request: SearchRequest
    qtype: QueryType
    day: int = 1


class Trace:
    """An ordered query trace with Table 1-style summary statistics."""

    def __init__(self, records: Optional[Sequence[QueryRecord]] = None):
        self.records: List[QueryRecord] = list(records) if records else []

    def append(self, record: QueryRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self.records[index])
        return self.records[index]

    def day(self, day: int) -> "Trace":
        """The sub-trace of one day."""
        return Trace([r for r in self.records if r.day == day])

    def of_type(self, qtype: QueryType) -> "Trace":
        """The sub-trace of one query type."""
        return Trace([r for r in self.records if r.qtype == qtype])

    def distribution(self) -> Dict[QueryType, float]:
        """Fraction of queries per type (Table 1's rows)."""
        if not self.records:
            return {}
        counts: Dict[QueryType, int] = {}
        for record in self.records:
            counts[record.qtype] = counts.get(record.qtype, 0) + 1
        total = len(self.records)
        return {qtype: count / total for qtype, count in counts.items()}

    def unique_queries(self) -> int:
        """Number of distinct root-based queries in the trace."""
        return len({r.request for r in self.records})

    # ------------------------------------------------------------------
    # persistence (tab-separated text; one record per line)
    # ------------------------------------------------------------------
    def save(self, stream: TextIO) -> None:
        """Write the trace as tab-separated text.

        Columns: day, query type, scope, filter, scoped base.  Queries
        are root-based by construction (§3.1.1), so the root base is
        not stored.
        """
        for record in self.records:
            stream.write(
                f"{record.day}\t{record.qtype.value}\t"
                f"{record.request.scope.name}\t{record.request.filter}\t"
                f"{record.scoped_request.base}\n"
            )

    @classmethod
    def load(cls, stream: TextIO) -> "Trace":
        """Read a trace written by :meth:`save`."""
        by_value = {qtype.value: qtype for qtype in QueryType}
        records: List[QueryRecord] = []
        for line_number, line in enumerate(stream, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 5:
                raise ValueError(
                    f"trace line {line_number}: expected 5 tab-separated "
                    f"fields, got {len(parts)}"
                )
            day_text, type_text, scope_text, filter_text, base_text = parts
            if type_text not in by_value:
                raise ValueError(f"trace line {line_number}: unknown type {type_text!r}")
            scope = Scope[scope_text]
            records.append(
                QueryRecord(
                    request=SearchRequest("", scope, filter_text),
                    scoped_request=SearchRequest(base_text, scope, filter_text),
                    qtype=by_value[type_text],
                    day=int(day_text),
                )
            )
        return cls(records)
