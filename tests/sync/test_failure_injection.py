"""Failure injection: lost responses, crashed replicas, expired sessions.

The ReSync protocol must converge despite the failures a polling
replica actually sees:

* a **lost response** — the poll executed at the master (the batch was
  drained) but never reached the replica, which retries with its old
  cookie; the master retransmits the retained batch merged with
  anything newer;
* a **lost response that was actually applied** — only the new cookie
  was lost; the retransmitted batch is applied twice, which must be
  harmless (all actions are idempotent);
* a **crashed replica** — all local state gone; restart with a null
  cookie (full reload);
* an **expired session** — the master forgot the cookie; the consumer's
  resilient poll falls back to a reload.
"""


import pytest
from hypothesis import given, settings, strategies as st

from repro.ldap import DN, Entry, ReSyncControl, Scope, SearchRequest, SyncMode
from repro.server import DirectoryServer, Modification
from repro.sync import ResyncProvider, SyncProtocolError, SyncedContent


REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")


def person(name: str, dept: str = "42") -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": dept},
    )


def build_master(n: int = 4) -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(n):
        master.add(person(f"E{i}"))
    return master


def lossy_poll(content: SyncedContent, provider) -> None:
    """Execute the poll at the master but 'lose' the response."""
    control = ReSyncControl(mode=SyncMode.POLL, cookie=content.cookie)
    provider.handle(REQUEST, control)  # response discarded in flight


class TestLostResponse:
    def test_retry_retransmits_batch(self):
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)

        master.delete("cn=E0,o=xyz")
        lossy_poll(content, provider)  # batch drained at master, lost

        response = content.poll(provider)  # retry with the OLD cookie
        assert [(u.action.value, str(u.dn)) for u in response.updates] == [
            ("delete", "cn=E0,o=xyz")
        ]
        assert content.matches_master(master)

    def test_newer_updates_merged_into_retransmission(self):
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)

        master.delete("cn=E0,o=xyz")
        lossy_poll(content, provider)
        master.add(person("E9"))  # happens between loss and retry

        response = content.poll(provider)
        actions = {(u.action.value, str(u.dn)) for u in response.updates}
        assert ("delete", "cn=E0,o=xyz") in actions
        assert ("add", "cn=E9,o=xyz") in actions
        assert content.matches_master(master)

    def test_applied_but_cookie_lost_is_idempotent(self):
        """The response arrived and was applied; only the new cookie was
        lost.  Re-applying the retransmitted batch must be harmless."""
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        old_cookie = content.cookie

        master.delete("cn=E0,o=xyz")
        master.modify("cn=E1,o=xyz", [Modification.replace("title", "x")])
        content.poll(provider)
        assert content.matches_master(master)

        # replay: pretend the cookie update was lost
        content.cookie = old_cookie
        content.poll(provider)
        assert content.matches_master(master)

    def test_sent_add_then_delete_not_dropped(self):
        """The retransmission-merge must keep a DELETE that follows a
        possibly-applied ADD (the unsound coalescing would drop both)."""
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        old_cookie = content.cookie

        master.add(person("E9"))
        # Response applied (replica now holds E9), but cookie lost.
        content.poll(provider)
        assert DN.parse("cn=E9,o=xyz") in content.dns()
        content.cookie = old_cookie

        master.delete("cn=E9,o=xyz")
        content.poll(provider)  # retry: must carry the delete
        assert DN.parse("cn=E9,o=xyz") not in content.dns()
        assert content.matches_master(master)

    def test_repeated_losses_eventually_converge(self):
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        for i in range(3):
            master.modify("cn=E1,o=xyz", [Modification.replace("title", f"t{i}")])
            lossy_poll(content, provider)
        content.poll(provider)
        assert content.matches_master(master)

    def test_double_lost_cookie_requires_reload(self):
        """Two generations behind cannot be retransmitted — the server
        answers with a protocol error and the consumer reloads."""
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        stale_cookie = content.cookie

        master.delete("cn=E0,o=xyz")
        content.poll(provider)
        master.delete("cn=E1,o=xyz")
        content.poll(provider)

        content.cookie = stale_cookie
        with pytest.raises(SyncProtocolError):
            content.poll(provider)
        content.resilient_poll(provider)
        assert content.matches_master(master)


class TestCrashRecovery:
    def test_restart_with_null_cookie(self):
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        master.delete("cn=E0,o=xyz")

        # replica crashes: all state lost
        reborn = SyncedContent(REQUEST)
        reborn.poll(provider)
        assert reborn.matches_master(master)

    def test_reload_discards_stale_entries(self):
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        master.delete("cn=E0,o=xyz")
        content.reload(provider)
        assert content.matches_master(master)


class TestSessionExpiry:
    def test_expired_session_recovered_by_resilient_poll(self):
        master = build_master()
        provider = ResyncProvider(master, idle_limit=1)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        # Another chatty session pushes the tick forward past the limit.
        other = SyncedContent(SearchRequest("o=xyz", Scope.SUB, "(cn=E1)"))
        other.poll(provider)
        for _ in range(4):
            other.poll(provider)
        master.delete("cn=E0,o=xyz")
        content.resilient_poll(provider)
        assert content.matches_master(master)


# ----------------------------------------------------------------------
# property: convergence under random loss/crash/expiry interleavings
# ----------------------------------------------------------------------
_steps = st.lists(
    st.sampled_from(
        ["update", "poll", "lost_poll", "cookie_lost", "crash", "retry"]
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=80, deadline=None)
@given(_steps)
def test_convergence_under_random_failures(steps):
    master = build_master(6)
    provider = ResyncProvider(master)
    content = SyncedContent(REQUEST)
    content.poll(provider)
    counter = 0
    last_cookie = content.cookie
    for step in steps:
        if step == "update":
            counter += 1
            name = f"E{counter % 6}"
            try:
                if counter % 3 == 0:
                    master.delete(f"cn={name},o=xyz")
                elif counter % 3 == 1:
                    master.modify(
                        f"cn={name},o=xyz",
                        [Modification.replace("title", f"t{counter}")],
                    )
                else:
                    master.add(person(f"N{counter}"))
            except Exception:
                pass  # target already gone this run
        elif step == "poll":
            last_cookie = content.cookie
            content.resilient_poll(provider)
        elif step == "lost_poll":
            try:
                lossy_poll(content, provider)
            except SyncProtocolError:
                pass
        elif step == "cookie_lost":
            # Roll back to this replica's own previous cookie (the new
            # one did not persist).  A cookie from before a crash died
            # with the old incarnation and cannot resurface.
            if last_cookie is not None:
                content.cookie = last_cookie
        elif step == "crash":
            content = SyncedContent(REQUEST)
            last_cookie = None
        elif step == "retry":
            content.resilient_poll(provider)
    content.resilient_poll(provider)
    assert content.matches_master(master)
