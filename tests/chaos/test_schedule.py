"""FaultSchedule composition and arming semantics.

The schedule is the chaos engine's declarative core: windows in
absolute virtual time, armed as one continuous FaultPlan whose spec is
swapped in place at boundaries.  The load-bearing properties: spec
combination is field-wise max, overlap accounting matches set
intersection, armed transitions fire at their exact virtual stamps, and
one schedule object arms onto any number of independent runs.
"""

import pytest

from repro.chaos import FaultSchedule, FaultWindow, combine_specs
from repro.ldap import Entry, Scope, SearchRequest
from repro.server import (
    DirectoryServer,
    FaultSpec,
    FaultyNetwork,
    NetworkPartitioned,
)
from repro.sync import ResyncProvider, SyncedContent

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")


def build_master(n: int = 4) -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(n):
        master.add(
            Entry(
                f"cn=E{i},o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"E{i}",
                    "sn": "T",
                    "departmentNumber": "42",
                },
            )
        )
    return master


class TestCombineSpecs:
    def test_empty_is_idle(self):
        assert combine_specs([]) == FaultSpec()

    def test_fieldwise_max(self):
        merged = combine_specs(
            [
                FaultSpec(drop_request=0.6, truncate=0.1, max_delay_ms=100.0),
                FaultSpec(drop_request=0.2, truncate=0.4, crash_length=5),
            ]
        )
        assert merged.drop_request == 0.6  # max, never 0.8
        assert merged.truncate == 0.4
        assert merged.max_delay_ms == 1000.0  # the default is the larger
        assert merged.crash_length == 5

    def test_max_never_exceeds_one(self):
        merged = combine_specs(
            [FaultSpec(drop_request=0.9), FaultSpec(drop_request=0.9)]
        )
        assert merged.drop_request == 0.9


class TestFaultWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultWindow("bogus", 0, 10)
        with pytest.raises(ValueError):
            FaultWindow("noise", 0, 10)  # noise needs a spec
        with pytest.raises(ValueError):
            FaultWindow("slow", 0, 10)  # slow needs latency_ms > 0
        with pytest.raises(ValueError):
            FaultWindow("partition", 10, 5)  # end before start

    def test_overlaps(self):
        a = FaultWindow("partition", 10, 20)
        b = FaultWindow("partition", 15, 30)
        c = FaultWindow("partition", 25, 40)
        crash = FaultWindow("crash", 18, 18)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)
        assert a.overlaps(crash)  # a point event inside the window
        assert not c.overlaps(crash)


class TestComposition:
    def test_windows_sorted_and_horizon(self):
        schedule = (
            FaultSchedule(seed=1)
            .crash(250.0)
            .partition(100.0, 300.0)
            .slow(200.0, 600.0, latency_ms=20.0)
        )
        assert [w.kind for w in schedule.windows] == ["partition", "slow", "crash"]
        assert schedule.horizon_ms == 600.0
        assert schedule.overlap_count() == 3  # every pair shares time

    def test_canonical_is_the_acceptance_shape(self):
        schedule = FaultSchedule.canonical(7, horizon_ms=3_600_000.0)
        kinds = [w.kind for w in schedule.windows]
        assert len(schedule.windows) == 9
        assert kinds.count("partition") == 2
        assert kinds.count("crash") == 2
        assert kinds.count("slow") == 2
        assert kinds.count("noise") == 3
        assert schedule.overlap_count() >= 8
        assert schedule.horizon_ms <= 3_600_000.0

    def test_describe_rows(self):
        schedule = FaultSchedule(seed=1).partition(10.0, 20.0, label="p1")
        assert schedule.describe() == [
            {"kind": "partition", "label": "p1", "start_ms": 10.0, "end_ms": 20.0}
        ]


class TestArming:
    def test_partition_window_cuts_and_heals_on_the_virtual_clock(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(seed=3)
        content = SyncedContent(REQUEST, network=net)
        schedule = FaultSchedule(seed=3).partition(100.0, 200.0)
        schedule.arm(net, provider)
        sched = net.scheduler

        content.poll(provider)  # before the window: clean
        sched.run_for(150.0 - sched.now)
        assert net.is_partitioned(provider)
        with pytest.raises(NetworkPartitioned):
            content.poll(provider)
        sched.run_for(250.0 - sched.now)
        assert not net.is_partitioned(provider)
        content.poll(provider)  # healed: the same session resumes
        assert net.registry.gauge("chaos.active_windows").value == 0
        assert net.registry.counter("chaos.windows").value == 1

    def test_noise_window_swaps_the_live_spec_in_place(self):
        net = FaultyNetwork(seed=4)
        provider = ResyncProvider(build_master())
        spec = FaultSpec(drop_request=0.5)
        schedule = FaultSchedule(seed=4).noise(100.0, 200.0, spec)
        schedule.arm(net, provider)
        plan = net.plan
        assert plan.spec == FaultSpec()  # idle before the window
        net.scheduler.run_for(150.0)
        assert net.plan is plan  # same plan object: indices keep counting
        assert plan.spec == spec
        net.scheduler.run_for(100.0)
        assert plan.spec == FaultSpec()

    def test_overlapping_slow_windows_apply_the_largest(self):
        net = FaultyNetwork(seed=5)
        provider = ResyncProvider(build_master())
        schedule = (
            FaultSchedule(seed=5)
            .slow(0.0, 400.0, latency_ms=30.0)
            .slow(100.0, 200.0, latency_ms=90.0)
        )
        schedule.arm(net, provider)
        key = net._server_key(provider)
        net.scheduler.run_for(50.0)
        assert net._slow[key] == 30.0
        net.scheduler.run_for(100.0)
        assert net._slow[key] == 90.0  # the larger overlap wins
        net.scheduler.run_for(100.0)
        assert net._slow[key] == 30.0  # inner window ended
        net.scheduler.run_for(200.0)
        assert key not in net._slow

    def test_zero_length_windows_are_skipped(self):
        net = FaultyNetwork(seed=6)
        provider = ResyncProvider(build_master())
        schedule = FaultSchedule(seed=6).partition(100.0, 100.0)
        schedule.arm(net, provider)
        net.scheduler.run_for(500.0)
        # Never armed: same-stamp event order is seeded-random, so a
        # zero-length window could heal before it cut.
        assert not net.is_partitioned(provider)
        assert net.registry.counter("chaos.windows").value == 0

    def test_one_schedule_arms_many_runs_identically(self):
        schedule = FaultSchedule.canonical(9, horizon_ms=60_000.0)

        def run():
            master = build_master()
            provider = ResyncProvider(master)
            net = FaultyNetwork(seed=9)
            schedule.arm(net, provider)
            content = SyncedContent(REQUEST, network=net)
            for tick in range(12):
                net.scheduler.run_for(5_000.0)
                try:
                    content.poll(provider)
                except Exception as exc:
                    pass
            return net.fault_counts(), net.stats.round_trips

        assert run() == run()
