"""Operation and result types shared across the server package.

Models the LDAP functional model (§2.2): query operations (search),
update operations (add, modify, delete, modify DN) and their results,
plus the :class:`UpdateRecord` stream that the synchronization
mechanisms of :mod:`repro.sync` consume.

Also home of the per-operation latency instrumentation
(:class:`OperationInstruments` / :func:`timed_operation`) that
:class:`~repro.server.directory.DirectoryServer` wraps around each
functional-model entry point — see docs/OBSERVABILITY.md §3
(``server.op.*``).
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..obs.registry import Counter, MetricsRegistry, Timer
from ..obs.tracing import span

__all__ = [
    "ResultCode",
    "LdapError",
    "ModType",
    "Modification",
    "UpdateOp",
    "UpdateRecord",
    "Referral",
    "SearchResult",
    "OperationInstruments",
    "timed_operation",
]


class ResultCode(enum.IntEnum):
    """Subset of RFC 2251 result codes the simulation distinguishes."""

    SUCCESS = 0
    OPERATIONS_ERROR = 1
    NO_SUCH_OBJECT = 32
    INVALID_DN_SYNTAX = 34
    ENTRY_ALREADY_EXISTS = 68
    NOT_ALLOWED_ON_NON_LEAF = 66
    UNWILLING_TO_PERFORM = 53
    REFERRAL = 10
    NO_SUCH_ATTRIBUTE = 16
    OBJECT_CLASS_VIOLATION = 65


class LdapError(Exception):
    """An LDAP operation failed with a result code."""

    def __init__(self, code: ResultCode, message: str = ""):
        super().__init__(f"{code.name}: {message}" if message else code.name)
        self.code = code
        self.message = message


class ModType(enum.Enum):
    """Modification types of the LDAP modify operation."""

    ADD = "add"
    DELETE = "delete"
    REPLACE = "replace"


@dataclass(frozen=True)
class Modification:
    """One change inside a modify operation."""

    mod_type: ModType
    attr: str
    values: Tuple[str, ...] = ()

    @classmethod
    def add(cls, attr: str, *values: str) -> "Modification":
        return cls(ModType.ADD, attr, tuple(values))

    @classmethod
    def replace(cls, attr: str, *values: str) -> "Modification":
        return cls(ModType.REPLACE, attr, tuple(values))

    @classmethod
    def delete(cls, attr: str, *values: str) -> "Modification":
        return cls(ModType.DELETE, attr, tuple(values))


class UpdateOp(enum.Enum):
    """The four LDAP update operations (§5.2's A, M, D, R)."""

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"
    MODIFY_DN = "modify_dn"


@dataclass(frozen=True)
class UpdateRecord:
    """One committed update at a master server.

    Carries enough state for every synchronization mechanism in
    :mod:`repro.sync`:

    * ``before`` — the entry as it was before the update (None for ADD),
    * ``after`` — the entry after the update (None for DELETE),
    * ``new_dn`` — for MODIFY_DN, the DN after the rename,
    * ``csn`` — change sequence number, strictly increasing per master.

    A changelog, by contrast, would persist only the *changed attributes*
    (§5.2 explains why that loses information); keeping before/after
    images here lets tests compare mechanisms against ground truth.
    """

    csn: int
    op: UpdateOp
    dn: DN
    before: Optional[Entry] = None
    after: Optional[Entry] = None
    new_dn: Optional[DN] = None
    modifications: Tuple[Modification, ...] = ()

    @property
    def effective_dn(self) -> DN:
        """DN of the entry after the operation (new DN for renames)."""
        return self.new_dn if self.new_dn is not None else self.dn


@dataclass(frozen=True)
class Referral:
    """A search continuation reference (SearchResultReference).

    ``url`` names the server holding the subordinate naming context and
    ``target`` the DN at which the client should re-base its search —
    together they are the LDAP URL of RFC 2255 in structured form.
    """

    url: str
    target: DN

    def __str__(self) -> str:
        suffix = f"/{self.target}" if not self.target.is_root else ""
        return f"{self.url}{suffix}"


class OperationInstruments:
    """Per-operation latency and count instruments for one server.

    ``time("search")`` returns a context manager that (i) increments
    ``server.op.count{op=search}``, (ii) observes the block's duration
    into the timers ``server.op.latency`` (all-operations aggregate) and
    ``server.op.latency{op=search}``, and (iii) opens the tracing span
    ``server.op.search``.  Instruments are created lazily per operation
    name and cached, so the steady-state cost is two clock reads and a
    histogram insert.
    """

    __slots__ = ("registry", "_latency", "_count", "_per_op")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._latency: Timer = registry.timer("server.op.latency")
        self._count: Counter = registry.counter("server.op.count")
        self._per_op: Dict[str, Tuple[Timer, Counter]] = {}

    def time(self, op: str) -> "_OperationTiming":
        cached = self._per_op.get(op)
        if cached is None:
            cached = (self._latency.labels(op=op), self._count.labels(op=op))
            self._per_op[op] = cached
        return _OperationTiming(self, cached[0], cached[1], op)


class _OperationTiming:
    __slots__ = ("_instruments", "_timer", "_counter", "_op", "_span", "_start")

    def __init__(
        self, instruments: OperationInstruments, timer: Timer, counter: Counter, op: str
    ):
        self._instruments = instruments
        self._timer = timer
        self._counter = counter
        self._op = op

    def __enter__(self) -> "_OperationTiming":
        from time import perf_counter

        self._counter.inc()
        self._instruments._count.inc()
        self._span = span("server.op." + self._op)
        self._span.__enter__()
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        from time import perf_counter

        elapsed = perf_counter() - self._start
        self._timer.observe(elapsed)
        self._instruments._latency.observe(elapsed)
        self._span.__exit__(*exc)
        return False


def timed_operation(op: str) -> Callable:
    """Decorator timing a server method through ``self.ops`` (above)."""

    def wrap(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def inner(self, *args, **kwargs):
            with self.ops.time(op):
                return fn(self, *args, **kwargs)

        return inner

    return wrap


@dataclass
class SearchResult:
    """Outcome of one search operation against one server.

    Attributes:
        entries: matching entries (already projected onto the requested
            attribute set).
        referrals: continuation references for subordinate contexts, or
            the single superior referral when name resolution failed.
        code: SUCCESS when the target was found, REFERRAL when the
            client must go elsewhere, NO_SUCH_OBJECT otherwise.
        degraded: True when the answering server was serving stale
            reads — a replica whose master was unreachable at answer
            time (docs/PROTOCOL.md §9).  The entries are the replica's
            last synchronized content, not fresh master content.
    """

    entries: List[Entry] = field(default_factory=list)
    referrals: List[Referral] = field(default_factory=list)
    code: ResultCode = ResultCode.SUCCESS
    degraded: bool = False

    @property
    def complete(self) -> bool:
        """True when the result is final — no referrals to chase."""
        return self.code is ResultCode.SUCCESS and not self.referrals
