"""Reconciliation safety properties (Hypothesis).

Two claims (docs/RECOVERY.md tier 2):

* **Sketch soundness** — whenever :meth:`EntrySketch.decode` returns a
  difference (rather than None), it is *exactly* the symmetric
  difference of the two sets; a corrupted sketch either still yields
  the exact difference or fails detectably, never a wrong answer.
* **Ladder convergence** — for any seeded divergence schedule and any
  sketch-corruption rate, a consumer whose ``:h`` cookie died converges
  to the master (through reconciliation or the rebuild fallback), and
  at no point holds an entry version the master never had.
"""

from hypothesis import given, settings, strategies as st

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import (
    DirectoryServer,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
    Modification,
)
from repro.sync import (
    DurabilityConfig,
    MemoryJournal,
    ReconcileConfig,
    ResilientConsumer,
    ResyncProvider,
    RetryPolicy,
    build_sketch,
    corrupt_cell,
    entry_fingerprint,
    entry_key,
)

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")


def person(name: str, sn: str = "T") -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": sn, "departmentNumber": "42"},
    )


def digest(entry: Entry):
    return (entry_key(entry.dn), entry_fingerprint(entry))


# ----------------------------------------------------------------------
# sketch soundness
# ----------------------------------------------------------------------
@given(
    master_names=st.sets(st.integers(0, 120), max_size=60),
    replica_names=st.sets(st.integers(0, 120), max_size=60),
    cells=st.sampled_from([12, 24, 48, 96]),
    salt=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_decode_is_exact_or_detected(master_names, replica_names, cells, salt):
    master = [person(f"E{i}") for i in sorted(master_names)]
    replica = [person(f"E{i}") for i in sorted(replica_names)]
    diff = build_sketch(master, cells, salt=salt).subtract(
        build_sketch(replica, cells, salt=salt)
    )
    decoded = diff.decode()
    if decoded is None:
        return  # detected failure: the caller doubles and retries
    positive, negative = decoded
    assert sorted(positive) == sorted(
        digest(e) for e in master if e.dn not in {r.dn for r in replica}
    )
    assert sorted(negative) == sorted(
        digest(e) for e in replica if e.dn not in {m.dn for m in master}
    )


@given(
    extra=st.integers(1, 8),
    cells=st.sampled_from([24, 48]),
    salt=st.integers(0, 2**32 - 1),
    position=st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_corruption_never_yields_a_wrong_difference(extra, cells, salt, position):
    shared = [person(f"S{i}") for i in range(20)]
    master = shared + [person(f"M{i}") for i in range(extra)]
    diff = build_sketch(master, cells, salt=salt).subtract(
        build_sketch(shared, cells, salt=salt)
    )
    corrupt_cell(diff, position)
    decoded = diff.decode()
    if decoded is not None:  # astronomically unlikely, but must be exact
        positive, negative = decoded
        assert sorted(positive) == sorted(digest(person(f"M{i}")) for i in range(extra))
        assert negative == []


# ----------------------------------------------------------------------
# ladder convergence under divergence + corruption
# ----------------------------------------------------------------------
def mutate(master: DirectoryServer, live: set, rng_value: int, step: int) -> None:
    name = f"E{rng_value % 24:03d}"
    dn = f"cn={name},o=xyz"
    kind = rng_value % 4
    if kind == 0 and dn in live:
        master.modify(dn, [Modification.replace("sn", f"S{step}")])
    elif kind == 1 and dn in live:
        master.delete(dn)
        live.discard(dn)
    elif kind == 2 and dn not in live:
        master.add(person(name))
        live.add(dn)
    else:
        master.add(person(f"X{step}"))
        live.add(f"cn=X{step},o=xyz")


@given(
    seed=st.integers(0, 2**32 - 1),
    ops=st.lists(st.integers(0, 2**16), min_size=1, max_size=20),
    corrupt_rate=st.sampled_from([0.0, 0.5, 1.0]),
    max_cells=st.sampled_from([48, 1024]),
)
@settings(max_examples=40, deadline=None)
def test_any_divergence_and_corruption_converges(seed, ops, corrupt_rate, max_cells):
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(24):
        master.add(person(f"E{i:03d}"))
    provider = ResyncProvider(
        master,
        durability=DurabilityConfig(history_max_entries=2),
        journal=MemoryJournal(),
    )
    net = FaultyNetwork(FaultPlan(FaultSpec(sketch_corrupt=corrupt_rate), seed=seed))
    consumer = ResilientConsumer(
        REQUEST,
        provider,
        network=net,
        seed=seed,
        policy=RetryPolicy(jitter=0.0),
        reconcile_config=ReconcileConfig(max_cells=max_cells),
    )
    consumer.sync_once()
    ever_valid = {digest(e) for e in master.search(REQUEST).entries}

    # Overflow the 2-entry history so the cookie carries :h …
    for i in range(4):
        master.modify(f"cn=E{i:03d},o=xyz", [Modification.replace("sn", "ovf")])
    consumer.sync_once()
    ever_valid |= {digest(e) for e in master.search(REQUEST).entries}
    assert consumer._cookie_overflowed()

    # …diverge by the seeded schedule, then kill the session.
    live = {f"cn=E{i:03d},o=xyz" for i in range(24)}
    for step, value in enumerate(ops):
        mutate(master, live, value, step)
    ever_valid |= {digest(e) for e in master.search(REQUEST).entries}
    provider.invalidate_cookie(consumer.content.cookie)

    cycles = consumer.converge(master, max_cycles=8)
    assert cycles is not None, (
        f"no convergence (seed={seed}, corrupt={corrupt_rate}, "
        f"faults={net.fault_counts()})"
    )
    # Safety: the replica never held an entry version the master
    # didn't — a corrupted sketch can delay recovery, not poison it.
    held = {digest(e) for e in consumer.content.entries.values()}
    assert held <= ever_valid
    if corrupt_rate == 1.0:
        # Every sketch was corrupted: recovery must have come from the
        # rebuild fallback, never from a "successful" corrupt decode.
        assert net.registry.counter("sync.reconcile.decode_success").value == 0
