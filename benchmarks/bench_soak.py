"""E13 — chaos soak: invariants and graceful degradation under schedule.

Two claims ride on the soak engine (docs/FAULTS.md §5):

1. **Soak invariants hold under the canonical schedule.**  A seeded
   3-simulated-hour soak — 3 tenant replicas, diurnal update waves,
   flash-crowd query bursts, region renames — runs under nine
   overlapping fault windows (two partitions, two provider crashes,
   two slow-node windows, message noise) with *zero* invariant
   violations: nobody serves fresh-looking stale data, journal replay
   is deterministic, and every replica converges byte-identically to
   the master once the last window heals.  The run is replayed from
   the same seed and must produce an identical report fingerprint.

2. **The health machine protects the provider.**  Against a provider
   partitioned for the same virtual horizon, a consumer with the
   health state machine (circuit breaker + quarantine, docs/FAULTS.md
   §4) sends at least **5× fewer** requests than the legacy
   unbounded-backoff consumer — measured and gated here, exported as
   ``degradation_reduction_x``.

All quantities are deterministic (virtual clock, seeded schedules), so
the committed baseline diffs exactly; only the wall-time metric is
runner-dependent (gated by the validator's seconds sanity bound).
"""

from __future__ import annotations

import time

from repro.chaos import FaultSchedule, SoakConfig, SoakRunner
from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, FaultyNetwork
from repro.sync import HealthPolicy, ResilientConsumer, ResyncProvider, RetryPolicy

from .common import report

SEED = 20050607
HOURS = 3.0
TENANTS = 3
EMPLOYEES = 240

#: Virtual horizon of the graceful-degradation cell (one sustained
#: partition), and the hard in-bench gate on the request reduction.
DEGRADATION_HORIZON_MS = 300_000.0
REDUCTION_GATE = 5.0

_CELL_POLICY = RetryPolicy(
    max_attempts=4, base_backoff_ms=20.0, max_backoff_ms=2_000.0, degraded_after=2
)
_CELL_HEALTH = HealthPolicy(
    max_total_attempts=64,
    max_total_backoff_ms=600_000.0,
    breaker_threshold=5,
    breaker_cooldown_ms=10_000.0,
    quarantine_after=2,
    quarantine_probe_ms=120_000.0,
)


def run_soak(seed: int = SEED):
    """One canonical soak run; raises InvariantViolation on any break."""
    config = SoakConfig(
        seed=seed,
        tenants=TENANTS,
        employees=EMPLOYEES,
        duration_hours=HOURS,
    )
    schedule = FaultSchedule.canonical(seed, horizon_ms=HOURS * 3_600_000.0)
    return SoakRunner(config, schedule).run(), schedule


def _cell_master() -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(10):
        master.add(
            Entry(
                f"cn=P{i},o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"P{i}",
                    "sn": "T",
                    "departmentNumber": "42",
                },
            )
        )
    return master


def degradation_requests(with_health: bool, seed: int = SEED) -> int:
    """Provider requests one consumer sends across the degradation
    horizon while its provider is partitioned.

    The consumer establishes a clean initial sync, the partition cuts,
    and the consumer is then driven until the virtual clock crosses the
    horizon — a legacy consumer burns its full per-cycle attempt cap
    forever, a health-machine consumer trips its breaker, quarantines
    and paces down to interval probes (or retires).  Only post-cut
    requests are counted.
    """
    master = _cell_master()
    provider = ResyncProvider(master)
    net = FaultyNetwork()
    consumer = ResilientConsumer(
        SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)"),
        provider,
        network=net,
        seed=seed,
        policy=_CELL_POLICY,
        health=_CELL_HEALTH if with_health else None,
        name="degradation-cell",
    )
    assert consumer.sync_once() is not None  # established before the cut
    net.partition(provider)
    net.stats.reset()
    guard = 0
    while net.elapsed_ms < DEGRADATION_HORIZON_MS:
        consumer.sync_once()
        if consumer.health_state == "gave_up":
            break  # terminal: zero further requests, zero clock advance
        guard += 1
        assert guard < 200_000, "degradation cell failed to advance the clock"
    return int(net.stats.round_trips)


def test_soak(benchmark):
    start = time.perf_counter()
    soak, schedule = run_soak()
    soak_seconds = time.perf_counter() - start

    # The schedule must actually be the acceptance shape: 8+ fault
    # windows with real overlap, at least one partition and one crash.
    kinds = [w["kind"] for w in soak.windows]
    assert len(soak.windows) >= 8
    assert soak.overlapping_windows >= 8
    assert "partition" in kinds and "crash" in kinds
    assert soak.fault_counts.get("partition", 0) >= 1
    assert soak.fault_counts.get("crash", 0) >= 1

    # Invariants: the run completed (no InvariantViolation), everyone
    # converged byte-identically, nobody was retired.
    assert soak.converged and soak.gave_up == 0
    assert soak.degraded_queries > 0  # the faults were actually felt

    # Replayability: an identical second run, fingerprint-equal.
    replay, _ = run_soak()
    assert soak.fingerprint() == replay.fingerprint()

    # Graceful degradation: the health machine must cut provider
    # requests from an unhealthy consumer by >= 5x.
    legacy_requests = degradation_requests(with_health=False)
    health_requests = degradation_requests(with_health=True)
    assert health_requests > 0
    reduction = legacy_requests / health_requests
    assert reduction >= REDUCTION_GATE, (
        f"health machine reduced provider requests only "
        f"{reduction:.1f}x (< {REDUCTION_GATE}x): "
        f"{legacy_requests} -> {health_requests}"
    )

    rows = []
    for snap in soak.fleet:
        cycles = soak.convergence_cycles.get(snap["name"])
        rows.append(
            [
                snap["name"],
                snap["state"],
                snap["breaker_trips"],
                snap["attempts_spent"],
                snap["entries"],
                "never" if cycles is None else cycles,
            ]
        )
    rows.append(["(degradation)", "legacy", "-", legacy_requests, "-", "-"])
    rows.append(["(degradation)", "health", "-", health_requests, "-", "-"])

    metrics = {
        "soak_ticks": soak.ticks,
        "soak_updates": soak.updates_committed,
        "soak_renamed_entries": soak.renamed_entries,
        "soak_queries": soak.queries_served,
        "soak_degraded_queries": soak.degraded_queries,
        "soak_invariant_checks": soak.invariant_checks,
        "soak_fault_total": sum(soak.fault_counts.values()),
        "soak_windows": len(soak.windows),
        "soak_overlapping_pairs": soak.overlapping_windows,
        "soak_gave_up": soak.gave_up,
        "soak_converged": int(soak.converged),
        "soak_replay_identical": int(soak.fingerprint() == replay.fingerprint()),
        "soak_run_seconds": soak_seconds,
        "round_trips": soak.round_trips,
        "bytes_sent": soak.bytes_sent,
        "degradation_legacy_requests": legacy_requests,
        "degradation_health_requests": health_requests,
        "degradation_reduction_x": round(reduction, 2),
    }
    for kind, count in sorted(soak.fault_counts.items()):
        metrics[f"fault_{kind}"] = count

    report(
        "soak",
        f"Chaos soak: {HOURS:g} simulated hours, {TENANTS} tenants, "
        f"{len(soak.windows)} fault windows (seed {SEED})",
        ["consumer", "state", "trips", "attempts", "entries", "converged@"],
        rows,
        params={
            "seed": SEED,
            "hours": HOURS,
            "tenants": TENANTS,
            "employees": EMPLOYEES,
            "degradation_horizon_ms": DEGRADATION_HORIZON_MS,
            "reduction_gate": REDUCTION_GATE,
        },
        metrics=metrics,
        paper_expected=None,
    )

    # Timed unit: the full graceful-degradation cell (initial sync,
    # partition, breaker trips, quarantine pacing across the horizon).
    benchmark(lambda: degradation_requests(with_health=True))
