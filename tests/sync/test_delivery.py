"""The per-session DeliveryQueue: batching, backpressure, degradation.

docs/TRANSPORT.md §4: size/age-bounded batches on the virtual clock, a
busy consumer defers flushes, and a queue past its high-water mark
degrades to per-DN coalesced-retain so slow consumers bound memory by
content size rather than update rate.
"""

import pytest

from repro.ldap import DN, Entry
from repro.ldap.ber import encoded_sync_batch_size
from repro.server import SimulatedNetwork
from repro.sync import BatchConfig, DeliveryQueue, SyncUpdate


def person(name, sn="T"):
    return Entry(
        f"cn={name},o=xyz", {"objectClass": ["person"], "cn": name, "sn": sn}
    )


def make_queue(config=None, **net_kwargs):
    net = SimulatedNetwork(pipelined=True, **net_kwargs)
    applied = []
    queue = DeliveryQueue(
        applied.append, network=net, scheduler=net.scheduler, config=config
    )
    return net, queue, applied


class TestBatchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchConfig(max_batch=0)
        with pytest.raises(ValueError):
            BatchConfig(max_age_ms=-1.0)
        with pytest.raises(ValueError):
            BatchConfig(max_batch=16, high_water=8)


class TestSizeAndAgeFlush:
    def test_size_bound_triggers_flush(self):
        net, queue, applied = make_queue(BatchConfig(max_batch=3, max_age_ms=100.0))
        for i in range(3):
            queue.offer(SyncUpdate.add(person(f"E{i}")))
        # third offer hit max_batch: flushed inline, nothing pending
        assert len(applied) == 3
        assert queue.pending_count == 0
        assert net.registry.counter("sync.batch.flushes").value == 1

    def test_age_bound_flushes_partial_batch(self):
        net, queue, applied = make_queue(BatchConfig(max_batch=64, max_age_ms=5.0))
        queue.offer(SyncUpdate.add(person("E0")))
        assert applied == []  # not due yet
        net.scheduler.run_for(4.0)
        assert applied == []
        net.scheduler.run_for(1.0)
        assert len(applied) == 1
        # latency equals the age bound exactly on the virtual clock
        assert queue.latencies == [5.0]

    def test_preserves_order_below_high_water(self):
        net, queue, applied = make_queue(BatchConfig(max_batch=4, max_age_ms=1.0))
        updates = [SyncUpdate.add(person(f"E{i}")) for i in range(10)]
        for update in updates:
            queue.offer(update)
        net.settle()
        assert applied == updates  # exact sequence, no coalescing

    def test_offer_many_counts_every_update(self):
        net, queue, applied = make_queue(BatchConfig(max_batch=4, max_age_ms=1.0))
        queue.offer_many([SyncUpdate.add(person(f"E{i}")) for i in range(6)])
        net.settle()
        assert len(applied) == 6
        assert net.registry.counter("sync.batch.offered").value == 6
        assert net.registry.counter("sync.batch.delivered").value == 6


class TestBytesAccounting:
    def test_bytes_sent_equals_encoded_frame_length(self):
        net, queue, applied = make_queue(BatchConfig(max_batch=4, max_age_ms=1.0))
        updates = [
            SyncUpdate.add(person("E0")),
            SyncUpdate.modify(person("E1", sn="Z")),
            SyncUpdate.delete(DN.parse("cn=E2,o=xyz")),
            SyncUpdate.add(person("E3")),
        ]
        before = net.stats.bytes_sent
        for update in updates:
            queue.offer(update)
        assert net.stats.bytes_sent - before == encoded_sync_batch_size(updates)
        assert net.stats.sync_entry_pdus == 3
        assert net.stats.sync_dn_pdus == 1


class TestBackpressure:
    def test_busy_consumer_defers_flush(self):
        net, queue, applied = make_queue(BatchConfig(max_batch=2, max_age_ms=1.0))
        queue.consumer_delay_ms = 50.0
        queue.offer(SyncUpdate.add(person("E0")))
        queue.offer(SyncUpdate.add(person("E1")))  # flush #1, consumer busy
        assert len(applied) == 2 and queue.busy
        queue.offer(SyncUpdate.add(person("E2")))
        queue.offer(SyncUpdate.add(person("E3")))  # would flush, deferred
        assert len(applied) == 2
        assert net.registry.counter("sync.batch.deferred").value == 1
        net.settle()  # ack fires, deferred batch drains
        assert len(applied) == 4
        assert not queue.busy

    def test_high_water_degrades_to_bounded_coalesced(self):
        config = BatchConfig(max_batch=4, max_age_ms=1.0, high_water=4)
        net, queue, applied = make_queue(config)
        queue.consumer_delay_ms = 1000.0
        # 30 updates to only 3 DNs while the consumer is stuck
        for r in range(10):
            for i in range(3):
                queue.offer(SyncUpdate.modify(person(f"E{i}", sn=f"r{r}")))
        assert queue.degraded
        # memory bounded by distinct DNs, not by update count
        assert queue.pending_count == 3
        assert net.registry.counter("sync.batch.degraded").value >= 1
        net.settle()
        # net effect: exactly the last write per DN arrived
        tail = applied[-3:]
        assert sorted(u.entry.first("sn") for u in tail) == ["r9", "r9", "r9"]

    def test_degraded_delete_supersedes_earlier_adds(self):
        config = BatchConfig(max_batch=2, max_age_ms=1.0, high_water=2)
        net, queue, applied = make_queue(config)
        queue.consumer_delay_ms = 1000.0
        queue.offer(SyncUpdate.add(person("E0")))
        queue.offer(SyncUpdate.add(person("E1")))  # flush; consumer busy
        for sn in ("a", "b", "c"):
            queue.offer(SyncUpdate.modify(person("E0", sn=sn)))
        queue.offer(SyncUpdate.delete(DN.parse("cn=E0,o=xyz")))
        assert queue.degraded
        net.settle()
        per_dn = [u for u in applied[2:] if str(u.dn) == "cn=E0,o=xyz"]
        assert len(per_dn) == 1 and per_dn[0].action.value == "delete"


class TestClose:
    def test_close_discards_and_unhooks(self):
        net, queue, applied = make_queue(BatchConfig(max_batch=8, max_age_ms=5.0))
        closed = []
        queue.on_close = closed.append
        queue.offer(SyncUpdate.add(person("E0")))
        queue.close()
        assert closed == [queue]
        net.settle()  # the armed age timer was cancelled: no delivery
        assert applied == []
        # closed queue swallows further offers
        queue.offer(SyncUpdate.add(person("E1")))
        assert queue.pending_count == 0

    def test_reentrant_offer_during_flush_stays_queued(self):
        net = SimulatedNetwork(pipelined=True)
        applied = []
        queue = DeliveryQueue(
            lambda u: None,  # replaced below to close over queue
            network=net,
            scheduler=net.scheduler,
            config=BatchConfig(max_batch=2, max_age_ms=1.0),
        )

        def deliver(update):
            applied.append(update)
            if len(applied) < 4:
                queue.offer(SyncUpdate.add(person(f"R{len(applied)}")))

        queue._deliver = deliver
        queue.offer(SyncUpdate.add(person("E0")))
        queue.offer(SyncUpdate.add(person("E1")))
        net.settle()
        # E0,E1 → reentrant R1,R2 → reentrant R3; all delivered, no
        # recursion blowup, nothing stranded.
        assert [str(u.dn) for u in applied] == [
            "cn=E0,o=xyz",
            "cn=E1,o=xyz",
            "cn=R1,o=xyz",
            "cn=R2,o=xyz",
            "cn=R3,o=xyz",
        ]
        assert queue.pending_count == 0
