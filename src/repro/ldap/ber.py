"""BER encoding of LDAP protocol elements (RFC 2251 §5, X.690 subset).

LDAP is "the X.500 information model over TCP/IP" with messages encoded
in BER (definite lengths, primitive-or-constructed tag-length-value).
This module implements the subset needed to put this repository's
operations on a wire:

* primitive encoders/decoders (INTEGER, OCTET STRING, BOOLEAN, ENUMERATED,
  SEQUENCE/SET, context-specific tags),
* LDAPMessage framing with message IDs,
* the operations the simulation uses: SearchRequest, SearchResultEntry,
  SearchResultReference, SearchResultDone, and the update-operation
  bodies,
* filter encoding per RFC 2251 §4.5.1's tagged-choice grammar.

The simulated network can therefore charge *measured* byte sizes
(:func:`encoded_entry_size`, :func:`encoded_search_request`) instead of
estimates.  Round trips are property-tested: ``decode(encode(x)) == x``
for every element implemented.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from .dn import DN
from .entry import Entry
from .filters import (
    And,
    Approx,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
)
from .query import Scope, SearchRequest

__all__ = [
    "BerError",
    "encode_tlv",
    "decode_tlv",
    "encode_integer",
    "decode_integer",
    "encode_octet_string",
    "encode_sequence",
    "encode_filter",
    "decode_filter",
    "encode_search_request",
    "decode_search_request",
    "encode_search_result_entry",
    "decode_search_result_entry",
    "encode_sync_update",
    "decode_sync_update",
    "encode_sync_batch",
    "decode_sync_batch",
    "encoded_sync_batch_size",
    "encoded_entry_size",
    "encoded_dn_size",
]

# Universal tags
TAG_BOOLEAN = 0x01
TAG_INTEGER = 0x02
TAG_OCTET_STRING = 0x04
TAG_ENUMERATED = 0x0A
TAG_SEQUENCE = 0x30
TAG_SET = 0x31

# LDAP application tags (RFC 2251 §4)
APP_SEARCH_REQUEST = 0x63
APP_SEARCH_RESULT_ENTRY = 0x64
# Private-range application tag for a coalesced ReSync notification
# batch (docs/TRANSPORT.md §4) — RFC 2251 stops at 0x79, so 0x7A is
# free for the experiment's persist-mode framing.
APP_SYNC_BATCH = 0x7A


class BerError(ValueError):
    """Malformed BER data."""


# ----------------------------------------------------------------------
# primitive TLV machinery
# ----------------------------------------------------------------------
def _encode_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    out = []
    while length:
        out.append(length & 0xFF)
        length >>= 8
    out.reverse()
    return bytes([0x80 | len(out)]) + bytes(out)


def encode_tlv(tag: int, value: bytes) -> bytes:
    """One tag-length-value element with a definite length."""
    return bytes([tag]) + _encode_length(len(value)) + value


def decode_tlv(data: bytes, offset: int = 0) -> Tuple[int, bytes, int]:
    """Decode one TLV; returns (tag, value bytes, next offset)."""
    if offset >= len(data):
        raise BerError("truncated TLV: no tag byte")
    tag = data[offset]
    offset += 1
    if offset >= len(data):
        raise BerError("truncated TLV: no length byte")
    first = data[offset]
    offset += 1
    if first < 0x80:
        length = first
    else:
        n = first & 0x7F
        if n == 0 or n > 8:
            raise BerError(f"unsupported length-of-length {n}")
        if offset + n > len(data):
            raise BerError("truncated TLV: long-form length")
        length = int.from_bytes(data[offset : offset + n], "big")
        offset += n
    if offset + length > len(data):
        raise BerError("truncated TLV: value")
    return tag, data[offset : offset + length], offset + length


def iter_tlvs(data: bytes) -> Iterator[Tuple[int, bytes]]:
    """Iterate the TLVs packed inside a constructed value."""
    offset = 0
    while offset < len(data):
        tag, value, offset = decode_tlv(data, offset)
        yield tag, value


def encode_integer(value: int, tag: int = TAG_INTEGER) -> bytes:
    if value == 0:
        body = b"\x00"
    else:
        length = (value.bit_length() + 8) // 8  # sign bit headroom
        body = value.to_bytes(length, "big", signed=True)
        # strip redundant leading byte while preserving the sign bit
        while (
            len(body) > 1
            and (
                (body[0] == 0x00 and body[1] < 0x80)
                or (body[0] == 0xFF and body[1] >= 0x80)
            )
        ):
            body = body[1:]
    return encode_tlv(tag, body)


def decode_integer(value: bytes) -> int:
    if not value:
        raise BerError("empty INTEGER")
    return int.from_bytes(value, "big", signed=True)


def encode_octet_string(text: str, tag: int = TAG_OCTET_STRING) -> bytes:
    return encode_tlv(tag, text.encode("utf-8"))


def encode_boolean(value: bool) -> bytes:
    return encode_tlv(TAG_BOOLEAN, b"\xff" if value else b"\x00")


def encode_sequence(*parts: bytes, tag: int = TAG_SEQUENCE) -> bytes:
    return encode_tlv(tag, b"".join(parts))


# ----------------------------------------------------------------------
# filters (RFC 2251 §4.5.1 tagged CHOICE)
# ----------------------------------------------------------------------
_CTX = 0x80  # context-specific, primitive
_CTXC = 0xA0  # context-specific, constructed

FILTER_AND = _CTXC | 0
FILTER_OR = _CTXC | 1
FILTER_NOT = _CTXC | 2
FILTER_EQUALITY = _CTXC | 3
FILTER_SUBSTRINGS = _CTXC | 4
FILTER_GE = _CTXC | 5
FILTER_LE = _CTXC | 6
FILTER_PRESENT = _CTX | 7
FILTER_APPROX = _CTXC | 8

_SUB_INITIAL = _CTX | 0
_SUB_ANY = _CTX | 1
_SUB_FINAL = _CTX | 2


def encode_filter(flt: Filter) -> bytes:
    """Encode a filter AST into its BER representation."""
    if isinstance(flt, And):
        return encode_tlv(FILTER_AND, b"".join(encode_filter(c) for c in flt.children))
    if isinstance(flt, Or):
        return encode_tlv(FILTER_OR, b"".join(encode_filter(c) for c in flt.children))
    if isinstance(flt, Not):
        return encode_tlv(FILTER_NOT, encode_filter(flt.child))
    if isinstance(flt, Equality):
        return encode_tlv(
            FILTER_EQUALITY,
            encode_octet_string(flt.attr) + encode_octet_string(flt.value),
        )
    if isinstance(flt, GreaterOrEqual):
        return encode_tlv(
            FILTER_GE,
            encode_octet_string(flt.attr) + encode_octet_string(flt.value),
        )
    if isinstance(flt, LessOrEqual):
        return encode_tlv(
            FILTER_LE,
            encode_octet_string(flt.attr) + encode_octet_string(flt.value),
        )
    if isinstance(flt, Approx):
        return encode_tlv(
            FILTER_APPROX,
            encode_octet_string(flt.attr) + encode_octet_string(flt.value),
        )
    if isinstance(flt, Present):
        return encode_tlv(FILTER_PRESENT, flt.attr.encode("utf-8"))
    if isinstance(flt, Substring):
        parts = [encode_octet_string(flt.attr)]
        subs = b""
        if flt.initial:
            subs += encode_tlv(_SUB_INITIAL, flt.initial.encode("utf-8"))
        for any_part in flt.any_parts:
            subs += encode_tlv(_SUB_ANY, any_part.encode("utf-8"))
        if flt.final:
            subs += encode_tlv(_SUB_FINAL, flt.final.encode("utf-8"))
        parts.append(encode_sequence(subs, tag=TAG_SEQUENCE))
        return encode_tlv(FILTER_SUBSTRINGS, b"".join(parts))
    raise BerError(f"cannot encode filter node {flt!r}")  # pragma: no cover


def decode_filter(data: bytes, offset: int = 0) -> Tuple[Filter, int]:
    """Decode one BER filter; returns (filter, next offset)."""
    tag, value, end = decode_tlv(data, offset)
    if tag in (FILTER_AND, FILTER_OR):
        children: List[Filter] = []
        inner = 0
        while inner < len(value):
            child, inner = decode_filter(value, inner)
            children.append(child)
        if not children:
            raise BerError("empty AND/OR filter")
        node = And(tuple(children)) if tag == FILTER_AND else Or(tuple(children))
        return node, end
    if tag == FILTER_NOT:
        child, _ = decode_filter(value, 0)
        return Not(child), end
    if tag in (FILTER_EQUALITY, FILTER_GE, FILTER_LE, FILTER_APPROX):
        pieces = list(iter_tlvs(value))
        if len(pieces) != 2:
            raise BerError("AttributeValueAssertion needs 2 elements")
        attr = pieces[0][1].decode("utf-8")
        assertion = pieces[1][1].decode("utf-8")
        cls = {
            FILTER_EQUALITY: Equality,
            FILTER_GE: GreaterOrEqual,
            FILTER_LE: LessOrEqual,
            FILTER_APPROX: Approx,
        }[tag]
        return cls(attr, assertion), end
    if tag == FILTER_PRESENT:
        return Present(value.decode("utf-8")), end
    if tag == FILTER_SUBSTRINGS:
        pieces = list(iter_tlvs(value))
        if len(pieces) != 2:
            raise BerError("SubstringFilter needs type + substrings")
        attr = pieces[0][1].decode("utf-8")
        initial, any_parts, final = "", [], ""
        for sub_tag, sub_value in iter_tlvs(pieces[1][1]):
            text = sub_value.decode("utf-8")
            if sub_tag == _SUB_INITIAL:
                initial = text
            elif sub_tag == _SUB_ANY:
                any_parts.append(text)
            elif sub_tag == _SUB_FINAL:
                final = text
            else:
                raise BerError(f"unknown substring tag {sub_tag:#x}")
        return Substring(attr, initial=initial, any_parts=tuple(any_parts), final=final), end
    raise BerError(f"unknown filter tag {tag:#x}")


# ----------------------------------------------------------------------
# search request / result entry
# ----------------------------------------------------------------------
_DEREF_NEVER = 0


def encode_search_request(request: SearchRequest, message_id: int = 1) -> bytes:
    """LDAPMessage { messageID, SearchRequest } (RFC 2251 §4.5.1)."""
    attrs = b"".join(
        encode_octet_string(a) for a in sorted(request.attributes) if a != "*"
    )
    body = (
        encode_octet_string(str(request.base))
        + encode_integer(int(request.scope), tag=TAG_ENUMERATED)
        + encode_integer(_DEREF_NEVER, tag=TAG_ENUMERATED)
        + encode_integer(0)  # sizeLimit
        + encode_integer(0)  # timeLimit
        + encode_boolean(False)  # typesOnly
        + encode_filter(request.filter)
        + encode_sequence(attrs)
    )
    operation = encode_tlv(APP_SEARCH_REQUEST, body)
    return encode_sequence(encode_integer(message_id) + operation)


def decode_search_request(data: bytes) -> Tuple[int, SearchRequest]:
    """Inverse of :func:`encode_search_request`."""
    tag, message, _ = decode_tlv(data)
    if tag != TAG_SEQUENCE:
        raise BerError("LDAPMessage must be a SEQUENCE")
    pieces = list(iter_tlvs(message))
    if len(pieces) != 2:
        raise BerError("LDAPMessage needs messageID + operation")
    message_id = decode_integer(pieces[0][1])
    if pieces[1][0] != APP_SEARCH_REQUEST:
        raise BerError("not a SearchRequest")
    body = pieces[1][1]
    offset = 0
    tag, base_bytes, offset = decode_tlv(body, offset)
    tag, scope_bytes, offset = decode_tlv(body, offset)
    tag, _deref, offset = decode_tlv(body, offset)
    tag, _size, offset = decode_tlv(body, offset)
    tag, _time, offset = decode_tlv(body, offset)
    tag, _types_only, offset = decode_tlv(body, offset)
    flt, offset = decode_filter(body, offset)
    tag, attrs_bytes, offset = decode_tlv(body, offset)
    attributes = [v.decode("utf-8") for _t, v in iter_tlvs(attrs_bytes)] or None
    request = SearchRequest(
        base_bytes.decode("utf-8"),
        Scope(decode_integer(scope_bytes)),
        flt,
        attributes,
    )
    return message_id, request


def _encode_attributes(entry: Entry) -> bytes:
    """PartialAttributeList: SEQUENCE OF { type, SET OF values }."""
    attributes = b""
    for name, values in sorted(entry, key=lambda item: item[0].lower()):
        vals = b"".join(encode_octet_string(v) for v in values)
        attributes += encode_sequence(
            encode_octet_string(name) + encode_tlv(TAG_SET, vals)
        )
    return attributes


def _decode_attributes(attrs_bytes: bytes, entry: Entry) -> None:
    for _t, attr_seq in iter_tlvs(attrs_bytes):
        attr_pieces = list(iter_tlvs(attr_seq))
        name = attr_pieces[0][1].decode("utf-8")
        values = [v.decode("utf-8") for _vt, v in iter_tlvs(attr_pieces[1][1])]
        entry.put(name, values)


def encode_search_result_entry(entry: Entry, message_id: int = 1) -> bytes:
    """LDAPMessage { messageID, SearchResultEntry } (RFC 2251 §4.5.2)."""
    body = encode_octet_string(str(entry.dn)) + encode_sequence(
        _encode_attributes(entry)
    )
    operation = encode_tlv(APP_SEARCH_RESULT_ENTRY, body)
    return encode_sequence(encode_integer(message_id) + operation)


def decode_search_result_entry(data: bytes) -> Tuple[int, Entry]:
    """Inverse of :func:`encode_search_result_entry`."""
    tag, message, _ = decode_tlv(data)
    if tag != TAG_SEQUENCE:
        raise BerError("LDAPMessage must be a SEQUENCE")
    pieces = list(iter_tlvs(message))
    message_id = decode_integer(pieces[0][1])
    if pieces[1][0] != APP_SEARCH_RESULT_ENTRY:
        raise BerError("not a SearchResultEntry")
    body = pieces[1][1]
    offset = 0
    _tag, dn_bytes, offset = decode_tlv(body, offset)
    _tag, attrs_bytes, offset = decode_tlv(body, offset)
    entry = Entry(dn_bytes.decode("utf-8"))
    _decode_attributes(attrs_bytes, entry)
    return message_id, entry


# ----------------------------------------------------------------------
# coalesced ReSync notification batches (docs/TRANSPORT.md §4)
# ----------------------------------------------------------------------
#: ENUMERATED codes of the per-update SyncAction, wire order fixed.
_SYNC_ACTION_CODES = {"add": 0, "modify": 1, "delete": 2, "retain": 3}
_SYNC_ACTION_NAMES = {code: name for name, code in _SYNC_ACTION_CODES.items()}


def encode_sync_update(update) -> bytes:
    """One ReSync update PDU::

        SEQUENCE { action ENUMERATED, dn OCTET STRING,
                   attributes PartialAttributeList (present iff the
                   action carries an entry) }

    *update* is a :class:`repro.sync.protocol.SyncUpdate` (typed loosely
    here to keep the layering one-way: ``sync`` imports ``ldap``).
    """
    code = _SYNC_ACTION_CODES.get(update.action.value)
    if code is None:
        raise BerError(f"cannot encode sync action {update.action!r}")
    body = encode_integer(code, tag=TAG_ENUMERATED) + encode_octet_string(
        str(update.dn)
    )
    if update.entry is not None:
        body += encode_sequence(_encode_attributes(update.entry))
    return encode_sequence(body)


def decode_sync_update(data: bytes):
    """Inverse of :func:`encode_sync_update`."""
    tag, body, _ = decode_tlv(data)
    if tag != TAG_SEQUENCE:
        raise BerError("sync update PDU must be a SEQUENCE")
    return _decode_sync_update_body(body)


def _decode_sync_update_body(body: bytes):
    from ..sync.protocol import SyncUpdate
    from .controls import SyncAction

    offset = 0
    tag, action_bytes, offset = decode_tlv(body, offset)
    if tag != TAG_ENUMERATED:
        raise BerError("sync update must start with an ENUMERATED action")
    name = _SYNC_ACTION_NAMES.get(decode_integer(action_bytes))
    if name is None:
        raise BerError(f"unknown sync action code in {action_bytes!r}")
    action = SyncAction(name)
    _tag, dn_bytes, offset = decode_tlv(body, offset)
    dn_text = dn_bytes.decode("utf-8")
    if offset >= len(body):
        return SyncUpdate(action, DN.parse(dn_text))
    _tag, attrs_bytes, offset = decode_tlv(body, offset)
    entry = Entry(dn_text)
    _decode_attributes(attrs_bytes, entry)
    return SyncUpdate(action, entry.dn, entry)


def encode_sync_batch(updates, message_id: int = 1) -> bytes:
    """LDAPMessage { messageID, [APPLICATION 26] SEQUENCE OF update }.

    The wire frame of one coalesced persist-mode notification batch:
    the pipelined transport's ``bytes_sent`` charges exactly
    ``len(encode_sync_batch(batch))`` (property-tested in
    ``tests/ldap/test_ber_batch.py``).
    """
    body = b"".join(encode_sync_update(update) for update in updates)
    operation = encode_tlv(APP_SYNC_BATCH, body)
    return encode_sequence(encode_integer(message_id) + operation)


def decode_sync_batch(data: bytes):
    """Inverse of :func:`encode_sync_batch`: ``(message_id, updates)``."""
    tag, message, _ = decode_tlv(data)
    if tag != TAG_SEQUENCE:
        raise BerError("LDAPMessage must be a SEQUENCE")
    pieces = list(iter_tlvs(message))
    if len(pieces) != 2:
        raise BerError("LDAPMessage needs messageID + operation")
    message_id = decode_integer(pieces[0][1])
    if pieces[1][0] != APP_SYNC_BATCH:
        raise BerError("not a sync batch")
    updates = []
    for tag, body in iter_tlvs(pieces[1][1]):
        if tag != TAG_SEQUENCE:
            raise BerError("sync batch elements must be SEQUENCEs")
        updates.append(_decode_sync_update_body(body))
    return message_id, updates


def encoded_sync_batch_size(updates, message_id: int = 1) -> int:
    """Wire size of *updates* framed as one sync batch PDU."""
    return len(encode_sync_batch(updates, message_id))


# ----------------------------------------------------------------------
# measured sizes for traffic accounting
# ----------------------------------------------------------------------
def encoded_entry_size(entry: Entry, message_id: int = 1) -> int:
    """Wire size of *entry* as a SearchResultEntry PDU."""
    return len(encode_search_result_entry(entry, message_id))


def encoded_dn_size(dn: DN) -> int:
    """Wire size of a DN-only PDU body (delete/retain actions)."""
    return len(encode_octet_string(str(dn)))
