"""The soak engine: invariants, replayability, failure reporting.

A short (30-simulated-minute) canonical soak keeps these tests in the
tier-1 budget while still crossing partitions, crashes, slow windows
and noise bursts; the full 3-hour acceptance run lives in
``benchmarks/bench_soak.py``.
"""

import pytest

from repro.chaos import (
    FaultSchedule,
    InvariantViolation,
    SoakConfig,
    SoakRunner,
)

HORIZON_MS = 30 * 60_000.0


def short_config(seed: int = 20050607, **overrides) -> SoakConfig:
    defaults = dict(
        seed=seed,
        tenants=2,
        employees=120,
        duration_hours=0.5,
    )
    defaults.update(overrides)
    return SoakConfig(**defaults)


def run_soak(seed: int = 20050607, **overrides):
    config = short_config(seed, **overrides)
    schedule = FaultSchedule.canonical(seed, horizon_ms=HORIZON_MS)
    return SoakRunner(config, schedule).run()


class TestCleanRun:
    def test_short_canonical_soak_holds_every_invariant(self):
        report = run_soak()
        assert report.ticks == 30
        assert report.updates_committed > 0
        assert report.queries_served > 0
        assert report.invariant_checks > 0
        # The schedule actually fired: partitions and crashes happened.
        assert report.fault_counts.get("partition", 0) >= 1
        assert report.fault_counts.get("crash", 0) >= 1
        # Everyone converged byte-identically after the last heal.
        assert report.converged
        assert report.gave_up == 0

    def test_replay_is_fingerprint_identical(self):
        assert run_soak().fingerprint() == run_soak().fingerprint()

    def test_different_seeds_diverge(self):
        assert run_soak(seed=1).fingerprint() != run_soak(seed=2).fingerprint()

    def test_fleet_table_renders_every_tenant(self):
        report = run_soak()
        table = report.fleet_table()
        assert "consumer" in table and "converged@" in table
        for snap in report.fleet:
            assert snap["name"] in table


class TestInvariantViolation:
    def test_message_names_seed_and_virtual_time(self):
        exc = InvariantViolation(
            "staleness-honesty", "tenant-x served fresh", seed=42, t_ms=1234.56
        )
        assert exc.invariant == "staleness-honesty"
        assert exc.seed == 42
        assert exc.t_ms == 1234.56
        assert "[seed=42 t=1235ms]" in str(exc)
        assert "staleness-honesty" in str(exc)

    def test_is_an_assertion_error(self):
        with pytest.raises(AssertionError):
            raise InvariantViolation("x", "y", seed=0, t_ms=0.0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SoakConfig(tenants=0)
        with pytest.raises(ValueError):
            SoakConfig(mode="push")

    def test_scenario_derives_from_the_soak_seed(self):
        config = short_config(seed=77)
        scenario = config.scenario_config()
        assert scenario.seed == 77
        assert scenario.duration_hours == 0.5
