"""E12 — convergence cost under injected faults (poll vs persist).

The paper argues ReSync converges through interruptions (§5); this
bench quantifies what that costs.  A :class:`ResilientConsumer` tracks
a mutating master over a :class:`FaultyNetwork` sweeping the uniform
fault rate, in both modes of update; once the network heals, the
consumer must reconverge within a bounded number of clean cycles.

Reported per (mode, rate): injected faults, retries, reloads, clean
cycles to reconverge, and total protocol round trips — all
deterministic (seeded fault schedules, seeded backoff jitter), so the
exported JSON is regression-diffable by ``validate_results.py`` and the
CI ``faults`` matrix job can assert bounded convergence at fixed seeds.
"""

from __future__ import annotations

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import (
    DirectoryServer,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
    Modification,
)
from repro.sync import (
    DurabilityConfig,
    MemoryJournal,
    ResilientConsumer,
    ResyncProvider,
    RetryPolicy,
)

from .common import report

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")
NAMES = [f"P{i}" for i in range(10)]
RATES = (0.0, 0.1, 0.2, 0.3, 0.4)
CRASH_RATES = (0.0, 0.2)
CRASH_STEPS = (5, 10)
SEED = 101
FAULT_STEPS = 15
MAX_CLEAN_CYCLES = 16


def person(name: str, dept: str = "42") -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": dept},
    )


def build_master() -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i, name in enumerate(NAMES):
        master.add(person(name, dept="42" if i % 2 == 0 else "99"))
    return master


def mutate(master: DirectoryServer, step: int) -> None:
    name = NAMES[step % len(NAMES)]
    dn = f"cn={name},o=xyz"
    kind = step % 4
    if kind == 0:
        master.modify(dn, [Modification.replace("sn", f"S{step}")])
    elif kind == 1:
        master.modify(dn, [Modification.replace("departmentNumber", "99")])
    elif kind == 2:
        master.modify(dn, [Modification.replace("departmentNumber", "42")])
    else:
        master.delete(dn)
        master.add(person(name))


def run_cell(mode: str, rate: float, seed: int = SEED) -> dict:
    """One (mode, rate) cell: faulty phase, heal, clean reconvergence."""
    master = build_master()
    provider = ResyncProvider(master)
    net = FaultyNetwork(FaultPlan(FaultSpec.uniform(rate), seed=seed))
    consumer = ResilientConsumer(
        REQUEST,
        provider,
        network=net,
        seed=seed,
        mode=mode,
        policy=RetryPolicy(max_attempts=4, persist_refresh_interval=4),
    )
    for step in range(FAULT_STEPS):
        mutate(master, step)
        consumer.sync_once()
    faults = sum(net.fault_counts().values())
    net.heal()
    cycles = consumer.converge(master, max_cycles=MAX_CLEAN_CYCLES)
    assert cycles is not None, f"no convergence (mode={mode}, rate={rate})"
    assert consumer.content.matches_master(master)
    registry = net.registry
    return {
        "faults": faults,
        "retries": int(registry.counter("sync.resilient.retries").value),
        "reloads": int(registry.counter("sync.resilient.reloads").value),
        "clean_cycles": cycles,
        "round_trips": net.stats.round_trips,
        "bytes_sent": net.stats.bytes_sent,
        "backoff_ms": registry.gauge("sync.resilient.backoff_ms").value,
    }


def run_crash_cell(mode: str, rate: float, seed: int = SEED) -> dict:
    """One ``--provider-crash`` cell: the master itself crashes twice
    mid-schedule (restart + seeded journal damage + recovery) on top of
    network faults at *rate*, so the export covers master-side faults,
    not just lost PDUs."""
    master = build_master()
    provider = ResyncProvider(
        master,
        durability=DurabilityConfig(snapshot_interval=8),
        journal=MemoryJournal(),
    )
    net = FaultyNetwork(FaultPlan(FaultSpec.uniform(rate), seed=seed))
    consumer = ResilientConsumer(
        REQUEST,
        provider,
        network=net,
        seed=seed,
        mode=mode,
        policy=RetryPolicy(max_attempts=4, persist_refresh_interval=4),
    )
    for step in range(FAULT_STEPS):
        mutate(master, step)
        if step in CRASH_STEPS:
            net.crash(provider)
        consumer.sync_once()
    faults = sum(net.fault_counts().values())
    net.heal()
    cycles = consumer.converge(master, max_cycles=MAX_CLEAN_CYCLES)
    assert cycles is not None, f"no convergence (crash, mode={mode}, rate={rate})"
    assert consumer.content.matches_master(master)
    registry = net.registry
    durability = master.metrics
    return {
        "faults": faults,
        "retries": int(registry.counter("sync.resilient.retries").value),
        "reloads": int(registry.counter("sync.resilient.reloads").value),
        "clean_cycles": cycles,
        "round_trips": net.stats.round_trips,
        "bytes_sent": net.stats.bytes_sent,
        "recoveries": int(durability.counter("sync.durability.recoveries").value),
        "replayed": int(
            durability.counter("sync.durability.replayed_records").value
        ),
    }


def test_fault_convergence(benchmark, provider_crash):
    rows = []
    metrics = {}
    for mode in ("poll", "persist"):
        for rate in RATES:
            cell = run_cell(mode, rate)
            rows.append(
                [
                    mode,
                    rate,
                    cell["faults"],
                    cell["retries"],
                    cell["reloads"],
                    cell["clean_cycles"],
                    cell["round_trips"],
                ]
            )
            key = f"{mode}_r{int(rate * 100):02d}"
            metrics[f"{key}_retries"] = cell["retries"]
            metrics[f"{key}_clean_cycles"] = cell["clean_cycles"]
            metrics[f"{key}_round_trips"] = cell["round_trips"]

    # Fault-free runs must not pay any resilience tax.
    assert metrics["poll_r00_retries"] == 0
    assert metrics["persist_r00_retries"] == 0
    assert metrics["poll_r00_clean_cycles"] == 1

    if provider_crash:
        for mode in ("poll", "persist"):
            for rate in CRASH_RATES:
                cell = run_crash_cell(mode, rate)
                rows.append(
                    [
                        f"{mode}+crash",
                        rate,
                        cell["faults"],
                        cell["retries"],
                        cell["reloads"],
                        cell["clean_cycles"],
                        cell["round_trips"],
                    ]
                )
                key = f"crash_{mode}_r{int(rate * 100):02d}"
                metrics[f"{key}_retries"] = cell["retries"]
                metrics[f"{key}_clean_cycles"] = cell["clean_cycles"]
                metrics[f"{key}_round_trips"] = cell["round_trips"]
                metrics[f"{key}_recoveries"] = cell["recoveries"]
                metrics[f"{key}_replayed"] = cell["replayed"]
        # Both scheduled crashes must actually have exercised recovery,
        # and a crash on a clean network must not force full reloads.
        assert metrics["crash_poll_r00_recoveries"] == len(CRASH_STEPS)
        assert metrics["crash_persist_r00_recoveries"] == len(CRASH_STEPS)

    report(
        "fault_convergence",
        "Convergence cost vs fault rate (uniform faults, seed 101)",
        ["mode", "rate", "faults", "retries", "reloads", "clean cyc", "round trips"],
        rows,
        params={
            "seed": SEED,
            "fault_steps": FAULT_STEPS,
            "max_clean_cycles": MAX_CLEAN_CYCLES,
            "rates": ",".join(str(r) for r in RATES),
            "crash_rates": ",".join(str(r) for r in CRASH_RATES)
            if provider_crash
            else "",
            "entries": len(NAMES),
        },
        metrics=metrics,
        paper_expected=None,
    )

    # Timed unit: one resilient poll cycle at a moderate fault rate.
    t_master = build_master()
    t_provider = ResyncProvider(t_master)
    t_net = FaultyNetwork(FaultPlan(FaultSpec.uniform(0.2), seed=SEED))
    t_consumer = ResilientConsumer(
        REQUEST,
        t_provider,
        network=t_net,
        seed=SEED,
        policy=RetryPolicy(max_attempts=8),
    )
    t_consumer.sync_once()
    step = [0]

    def faulty_cycle():
        step[0] += 1
        mutate(t_master, step[0])
        t_consumer.sync_once()

    benchmark(faulty_cycle)
