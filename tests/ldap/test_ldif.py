"""Tests for LDIF serialization and parsing."""

import io

from repro.ldap import Entry, entries_to_ldif, entry_to_ldif, parse_ldif, write_ldif


def sample() -> Entry:
    return Entry(
        "cn=John Doe,o=xyz",
        {"objectClass": ["person"], "cn": "John Doe", "sn": "Doe"},
    )


class TestRender:
    def test_dn_first_line(self):
        assert entry_to_ldif(sample()).splitlines()[0] == "dn: cn=John Doe,o=xyz"

    def test_attributes_sorted(self):
        lines = entry_to_ldif(sample()).splitlines()[1:]
        names = [line.split(":")[0] for line in lines]
        assert names == sorted(names, key=str.lower)

    def test_unsafe_value_base64(self):
        entry = Entry("cn=x,o=xyz", {"objectClass": ["person"], "cn": "x", "sn": " café"})
        text = entry_to_ldif(entry)
        assert "sn:: " in text

    def test_leading_colon_base64(self):
        entry = Entry("cn=x,o=xyz", {"cn": ":odd"})
        assert "cn:: " in entry_to_ldif(entry)

    def test_entries_sorted_by_dn(self):
        a = Entry("cn=b,o=xyz", {"cn": "b"})
        b = Entry("cn=a,o=xyz", {"cn": "a"})
        text = entries_to_ldif([a, b])
        assert text.index("cn=a,o=xyz") < text.index("cn=b,o=xyz")


class TestParse:
    def test_roundtrip(self):
        entry = sample()
        parsed = list(parse_ldif(entry_to_ldif(entry)))
        assert len(parsed) == 1
        assert parsed[0] == entry

    def test_base64_roundtrip(self):
        entry = Entry("cn=x,o=xyz", {"objectClass": ["person"], "cn": "x", "sn": " café"})
        assert list(parse_ldif(entry_to_ldif(entry)))[0] == entry

    def test_multiple_records(self):
        entries = [
            Entry("cn=a,o=xyz", {"cn": "a"}),
            Entry("cn=b,o=xyz", {"cn": "b"}),
        ]
        parsed = list(parse_ldif(entries_to_ldif(entries)))
        assert len(parsed) == 2

    def test_comments_skipped(self):
        text = "# header\ndn: cn=a,o=xyz\ncn: a\n"
        parsed = list(parse_ldif(text))
        assert parsed[0].first("cn") == "a"

    def test_continuation_lines(self):
        text = "dn: cn=a,o=xyz\ncn: long\n  value\n"
        parsed = list(parse_ldif(text))
        assert parsed[0].first("cn") == "long value"

    def test_missing_dn_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            list(parse_ldif("cn: orphan\n"))

    def test_write_ldif(self):
        buf = io.StringIO()
        write_ldif([sample()], buf)
        assert "dn: cn=John Doe,o=xyz" in buf.getvalue()
