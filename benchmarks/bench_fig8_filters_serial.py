"""E8 — Figure 8: hit ratio vs number of stored filters, serialNumber.

Paper: three curves — recently performed **user queries only**
(temporal locality: a window of the last 50 queries gives ≈20% hit
ratio and the curve saturates after ~100 cached queries), **generalized
filters only**, and **both**; storing both reaches **hit ratio 0.5
with just 200 stored filters**.  Containment for this query type is a
simple substring match, so processing cost stays minor (measured via
``containment_checks``).
"""

from __future__ import annotations

import pytest

from repro.workload import QueryType

from .common import (
    BenchEnv,
    block_filter,
    hot_blocks,
    report,
    run_filter_point,
)


@pytest.fixture(scope="module")
def fig8_rows(env: BenchEnv):
    eval_trace = env.day(2).of_type(QueryType.SERIAL)
    blocks = hot_blocks(env)
    rows = []

    # Curve 1: cached user queries only.
    for window in (25, 50, 100, 200, 400):
        result, replica = run_filter_point(
            env, [], eval_trace, cache_capacity=window
        )
        rows.append(("user queries", window, result.hit_ratio, result.containment_checks))

    # Curve 2: generalized filters only.
    for k in (25, 50, 100, 200):
        filters = [block_filter(b, cc) for b, cc, _h in blocks[:k]]
        result, replica = run_filter_point(env, filters, eval_trace)
        rows.append(("generalized", k, result.hit_ratio, result.containment_checks))

    # Curve 3: both — generalized filters plus a 50-query window.
    for k in (25, 50, 100, 150):
        filters = [block_filter(b, cc) for b, cc, _h in blocks[:k]]
        result, replica = run_filter_point(
            env, filters, eval_trace, cache_capacity=50
        )
        rows.append(("both", k + 50, result.hit_ratio, result.containment_checks))
    return rows


def test_fig8_hit_ratio_vs_filter_count(benchmark, env: BenchEnv, fig8_rows):
    cached = {n: hit for c, n, hit, _k in fig8_rows if c == "user queries"}
    generalized = {n: hit for c, n, hit, _k in fig8_rows if c == "generalized"}
    both = {n: hit for c, n, hit, _k in fig8_rows if c == "both"}
    report(
        "fig8",
        "Hit ratio vs # stored filters — serialNumber query",
        ["curve", "filters", "hit ratio", "containment checks"],
        fig8_rows,
        params={"query_type": "serialNumber", "curves": "cached,generalized,both"},
        metrics={
            "cached50_hit": cached.get(50, 0.0),
            "generalized_best_hit": max(generalized.values(), default=0.0),
            "both_best_hit": max(both.values(), default=0.0),
        },
        paper_expected={"cached50_hit": 0.2, "both_hit_by_200_filters": 0.5},
    )

    # Paper anchor: a 50-query window gives ≈20% hit ratio.
    assert 0.12 <= cached[50] <= 0.30, "50 cached queries should give ≈0.2"

    # Paper anchor: the cached-only curve saturates after ~100 queries —
    # the marginal hit ratio per cached query collapses once the window
    # exceeds the temporal-locality horizon.
    initial_slope = cached[50] / 50
    tail_slope = (cached[400] - cached[100]) / 300
    assert tail_slope < initial_slope / 5, "temporal-locality curve must saturate"
    assert cached[400] < generalized[100], (
        "cached queries alone must stay below the generalized curve"
    )

    # Paper anchor: both curves combined reach ≈0.5 by 200 filters.
    reached = [hit for n, hit in both.items() if n <= 200]
    assert max(reached) >= 0.45, "both-curve must reach ≈0.5 within 200 filters"

    # Shape: both ≥ generalized ≥ (eventually) cached, pointwise where
    # comparable.
    for n, hit in generalized.items():
        if n + 50 in both:
            assert both[n + 50] >= hit - 0.02

    # Timed unit: answering one serialNumber query against 100 stored
    # filters + 50 cached queries (the processing-overhead story).
    filters = [block_filter(b, cc) for b, cc, _h in hot_blocks(env)[:100]]
    from repro.core import FilterReplica
    from repro.server import SimulatedNetwork
    from repro.sync import ResyncProvider

    master = env.fresh_master()
    provider = ResyncProvider(master)
    replica = FilterReplica("bench", network=SimulatedNetwork(), cache_capacity=50)
    for request in filters:
        replica.add_filter(request, provider)
    sample = env.day(2).of_type(QueryType.SERIAL)[0].request
    benchmark(lambda: replica.answer(sample))
