"""BER round-tripping of batched sync PDUs (docs/TRANSPORT.md §4).

The pipelined transport frames every coalesced persist batch as one
real wire PDU through the existing BER encoder, so ``bytes_sent``
becomes encoded-length-accurate.  Property: encode→decode of *any*
batch is identity, and the charged byte delta is exactly the frame
length.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ldap import DN, Entry
from repro.ldap.ber import (
    BerError,
    decode_sync_batch,
    decode_sync_update,
    encode_sync_batch,
    encode_sync_update,
    encoded_sync_batch_size,
)
from repro.server import SimulatedNetwork
from repro.sync import SyncUpdate

# Printable, LDAP-safe attribute values (no RDN metacharacters in cn).
_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)
_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    min_size=0,
    max_size=20,
)


@st.composite
def entries(draw):
    name = draw(_names)
    attrs = {"objectClass": ["person"], "cn": [name]}
    for attr in draw(st.lists(_names, max_size=3, unique=True)):
        attrs[attr] = draw(st.lists(_values, min_size=1, max_size=3))
    return Entry(f"cn={name},o=xyz", attrs)


@st.composite
def sync_updates(draw):
    kind = draw(st.sampled_from(["add", "modify", "delete", "retain"]))
    if kind in ("add", "modify"):
        entry = draw(entries())
        return SyncUpdate.add(entry) if kind == "add" else SyncUpdate.modify(entry)
    dn = DN.parse(f"cn={draw(_names)},o=xyz")
    return SyncUpdate.delete(dn) if kind == "delete" else SyncUpdate.retain(dn)


def _canonicalized(entry: Entry) -> Entry:
    # The wire codec writes canonical attribute names, so an entry built
    # with an alias ("localityName") round-trips to its canonical
    # spelling ("l") — semantically the same attribute.
    return Entry(entry.dn, dict(entry))


def assert_update_equal(a: SyncUpdate, b: SyncUpdate) -> None:
    assert a.action == b.action
    assert str(a.dn) == str(b.dn)
    if a.entry is None:
        assert b.entry is None
    else:
        assert str(a.entry.dn) == str(b.entry.dn)
        assert _canonicalized(a.entry).semantically_equal(_canonicalized(b.entry))


class TestSingleUpdate:
    @given(sync_updates())
    @settings(max_examples=150)
    def test_roundtrip_identity(self, update):
        assert_update_equal(decode_sync_update(encode_sync_update(update)), update)

    def test_garbage_rejected(self):
        with pytest.raises(BerError):
            decode_sync_update(b"\x04\x03abc")


class TestBatchFraming:
    @given(st.lists(sync_updates(), max_size=12), st.integers(1, 2**20))
    @settings(max_examples=100)
    def test_batch_roundtrip_identity(self, updates, message_id):
        frame = encode_sync_batch(updates, message_id=message_id)
        decoded_id, decoded = decode_sync_batch(frame)
        assert decoded_id == message_id
        assert len(decoded) == len(updates)
        for a, b in zip(updates, decoded):
            assert_update_equal(a, b)

    @given(st.lists(sync_updates(), max_size=12))
    @settings(max_examples=100)
    def test_size_helper_matches_encoding(self, updates):
        assert encoded_sync_batch_size(updates) == len(encode_sync_batch(updates))

    def test_garbage_rejected(self):
        with pytest.raises(BerError):
            decode_sync_batch(b"\x02\x01\x01")


class TestBytesCharged:
    @given(st.lists(sync_updates(), min_size=1, max_size=10))
    @settings(max_examples=60)
    def test_deliver_batch_charges_exact_frame_length(self, updates):
        net = SimulatedNetwork(pipelined=True)
        before = net.stats.bytes_sent
        delivered = net.deliver_batch(lambda u: None, updates)
        assert delivered == len(updates)
        assert net.stats.bytes_sent - before == len(encode_sync_batch(updates))

    def test_empty_batch_charges_nothing(self):
        net = SimulatedNetwork(pipelined=True)
        assert net.deliver_batch(lambda u: None, []) == 0
        assert net.stats.bytes_sent == 0
