"""E1 — Table 1: workload distribution.

Paper: query-type shares of the real two-day trace —
(serialNumber=_) 58%, (mail=_) 24%, (&(dept=_)(div=_)) 16%,
(location=_) 2%.  The synthetic workload must reproduce this mix, since
every downstream figure weights the per-type results by it.
"""

from __future__ import annotations


from repro.workload import QueryType, WorkloadConfig, WorkloadGenerator

from .common import BenchEnv, report

PAPER_SHARES = {
    QueryType.SERIAL: 0.58,
    QueryType.MAIL: 0.24,
    QueryType.DEPARTMENT: 0.16,
    QueryType.LOCATION: 0.02,
}


def test_table1_workload_distribution(benchmark, env: BenchEnv):
    dist = env.trace.distribution()

    rows = []
    for qtype, paper in PAPER_SHARES.items():
        measured = dist.get(qtype, 0.0)
        rows.append((qtype.value, paper, round(measured, 4)))
        assert abs(measured - paper) < 0.03, f"{qtype} share off Table 1"
    report(
        "table1",
        "Workload distribution (paper % vs measured %)",
        ["query type", "paper", "measured"],
        rows,
        params={"trace_queries": len(env.trace)},
        metrics={f"{qtype}_share": measured for qtype, paper, measured in rows},
        paper_expected={f"{qtype}_share": paper for qtype, paper, _m in rows},
    )

    # Timed unit: generating a 1000-query trace from the directory.
    generator = WorkloadGenerator(env.directory, WorkloadConfig(seed=77))
    benchmark(lambda: generator.generate(1000, days=1))
