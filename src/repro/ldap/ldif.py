"""Minimal LDIF (LDAP Data Interchange Format, RFC 2849) support.

Used by the examples and by tests to snapshot directory content in a
human-readable, diff-friendly form.  Supports the content subset
(``dn:`` + attribute lines, records separated by blank lines) with
base64 encoding of unsafe values.
"""

from __future__ import annotations

import base64
from typing import Iterable, Iterator, List, TextIO

from .entry import Entry

__all__ = ["entry_to_ldif", "entries_to_ldif", "parse_ldif", "write_ldif"]


def _is_safe(value: str) -> bool:
    """RFC 2849 SAFE-STRING test (conservative)."""
    if value == "":
        return True
    if value[0] in {" ", ":", "<"}:
        return False
    return all(32 <= ord(ch) < 127 for ch in value)


def _attr_line(name: str, value: str) -> str:
    if _is_safe(value):
        return f"{name}: {value}"
    encoded = base64.b64encode(value.encode("utf-8")).decode("ascii")
    return f"{name}:: {encoded}"


def entry_to_ldif(entry: Entry) -> str:
    """Render one entry as an LDIF record (no trailing blank line)."""
    lines: List[str] = [_attr_line("dn", str(entry.dn))]
    for name, values in sorted(entry, key=lambda item: item[0].lower()):
        for value in values:
            lines.append(_attr_line(name, value))
    return "\n".join(lines)


def entries_to_ldif(entries: Iterable[Entry]) -> str:
    """Render entries as LDIF, sorted by DN for deterministic diffs."""
    ordered = sorted(entries, key=lambda e: str(e.dn).lower())
    return "\n\n".join(entry_to_ldif(e) for e in ordered) + "\n"


def write_ldif(entries: Iterable[Entry], stream: TextIO) -> None:
    """Write entries to *stream* in LDIF form."""
    stream.write(entries_to_ldif(entries))


def parse_ldif(text: str) -> Iterator[Entry]:
    """Parse LDIF content records back into entries.

    Handles continuation lines (leading space), ``::`` base64 values and
    ``#`` comments.  Raises :class:`ValueError` on records without a
    ``dn:`` line.
    """
    # Unfold continuation lines first.
    unfolded: List[str] = []
    for raw in text.splitlines():
        if raw.startswith(" ") and unfolded:
            unfolded[-1] += raw[1:]
        else:
            unfolded.append(raw)

    record: List[str] = []
    for line in unfolded + [""]:
        stripped = line.rstrip("\n")
        if stripped.startswith("#"):
            continue
        if stripped == "":
            if record:
                yield _record_to_entry(record)
                record = []
            continue
        record.append(stripped)


def _record_to_entry(lines: List[str]) -> Entry:
    dn_value = None
    attrs: List[tuple] = []
    for line in lines:
        if "::" in line and line.index("::") < line.index(":") + 1:
            name, _, value = line.partition("::")
            decoded = base64.b64decode(value.strip()).decode("utf-8")
        else:
            name, _, value = line.partition(":")
            decoded = value.strip()
        name = name.strip()
        if name.lower() == "dn":
            dn_value = decoded
        else:
            attrs.append((name, decoded))
    if dn_value is None:
        raise ValueError(f"LDIF record without dn line: {lines!r}")
    entry = Entry(dn_value)
    for name, value in attrs:
        entry.add_values(name, value)
    return entry
