"""Simulated network joining clients, servers and replicas.

The paper's evaluation metrics are protocol-level — round trips between
client and servers (Figure 2, reproduced by E2 in docs/../EXPERIMENTS.md),
update PDUs and entries transferred (Figures 6/7, benches
``bench_fig6_update_traffic_serial.py`` / ``bench_fig7_update_traffic_dept.py``)
— so the "network" here is an in-process message bus that *counts*
rather than transports:

* one ``round_trip`` per request/response exchange with a server,
* per-message PDU and byte accounting (entry PDUs, referral PDUs,
  sync-update PDUs),
* optional fixed per-round-trip latency so examples can report
  wall-clock-style comparisons between referral chasing and local
  answering.

Counters live on :class:`TrafficStats`, which both the client and the
ReSync sessions share.  Since ISSUE 1, ``TrafficStats`` is a *facade*
over :class:`repro.obs.MetricsRegistry` counters (see
docs/OBSERVABILITY.md §3): each historical field aliases the registry
counter ``net.traffic.<field>``, so the decades of call sites that do
``network.stats.round_trips += 1`` keep working while exporters read
the same numbers through ``network.registry.to_dict()`` or
``to_prometheus_text()``.  Connection accounting (§5.2's scaling
metric — one open connection per persist-mode filter) is likewise
mirrored to ``net.connections.open`` / ``net.connections.total``.

Since ISSUE 3 the network is also the **fault-injection seam**: every
synchronization exchange between a consumer and a provider is routed
through :meth:`SimulatedNetwork.sync_exchange` /
:meth:`SimulatedNetwork.persist_exchange`, and persist-mode
notification callbacks through :meth:`SimulatedNetwork.wrap_deliver`.
On this perfect base network those hooks only do the historical
round-trip accounting; :class:`repro.server.faults.FaultyNetwork`
overrides them to drop, duplicate, delay, truncate and crash
deterministically (``net.fault.*`` metrics, docs/PROTOCOL.md §9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..obs.registry import Counter, MetricsRegistry
from .directory import DirectoryServer
from .scheduler import DeterministicScheduler

__all__ = [
    "TrafficStats",
    "SimulatedNetwork",
    "TRAFFIC_FIELDS",
    "Delivery",
    "TransportError",
    "RequestDropped",
    "ResponseDropped",
    "ResponseTruncated",
    "ServerUnavailable",
    "NetworkPartitioned",
    "OperationTimeout",
    "ServerBusy",
]


class TransportError(Exception):
    """A message was lost to the network rather than refused by a peer.

    Base class of every injectable transport fault.  Consumers must
    treat these as *transient*: retry with backoff, never wipe local
    replica state (contrast :class:`repro.sync.SyncProtocolError`,
    whose recovery path is a cookie reload).  ``fault`` names the
    injected fault kind (matches the ``net.fault.<kind>`` counter).
    """

    fault = "transport"


class RequestDropped(TransportError):
    """The request never reached the server (no server-side effect)."""

    fault = "drop_request"


class ResponseDropped(TransportError):
    """The server processed the request but the response was lost."""

    fault = "drop_response"


class ResponseTruncated(TransportError):
    """The response stream was cut mid-delivery.

    ``partial`` carries the prefix that did arrive (cookie stripped —
    the cookie travels last).  Appliers may only use the prefix when
    it is safe without the tail: not an initial-content response and
    not a retain-mode response (docs/PROTOCOL.md §9).
    """

    fault = "truncate"

    def __init__(self, message: str, partial=None):
        super().__init__(message)
        self.partial = partial


class ServerUnavailable(TransportError):
    """The server is inside a crash/restart window."""

    fault = "crash"


class NetworkPartitioned(TransportError):
    """No route between the consumer and the server: the network is
    partitioned.

    Unlike :class:`ServerUnavailable` the server itself is healthy —
    its session state survives, so a persist session resumes from its
    cookie once the partition heals (no crash epoch bump).  Cut and
    healed by :meth:`repro.server.faults.FaultyNetwork.partition` /
    ``heal_partition``, or probabilistically from the plan's ``:p``
    stream.
    """

    fault = "partition"


class OperationTimeout(TransportError):
    """The response arrived later than the consumer's per-operation
    timeout; the consumer treats it exactly like a lost response."""

    fault = "timeout"


class ServerBusy(TransportError):
    """The server refused the request under overload.

    Raised by resync-storm admission control
    (:class:`repro.sync.durability.AdmissionController`) when the
    full-content rebuild budget is exhausted.  ``retry_after_ms`` is
    the server's backoff hint; resilient consumers treat it as the
    minimum wait before retrying.  A transport error, not a protocol
    error: the consumer's session (if any) is untouched.
    """

    fault = "busy"

    def __init__(self, message: str, retry_after_ms: float = 0.0):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


@dataclass
class Delivery:
    """One delivered copy of a synchronization response.

    A perfect network delivers exactly one; a faulty one may deliver
    two (duplication) or attach a latency the consumer can compare
    against its per-operation timeout.
    """

    response: object
    delay_ms: float = 0.0
    duplicate: bool = False

#: The seven protocol-level counters, in declaration order.  Each is
#: backed by the registry counter ``net.traffic.<field>``.
TRAFFIC_FIELDS = (
    "round_trips",
    "requests",
    "entry_pdus",
    "referral_pdus",
    "sync_entry_pdus",
    "sync_dn_pdus",
    "bytes_sent",
)

_METRIC_PREFIX = "net.traffic."


class TrafficStats:
    """Protocol-level traffic counters, aliased onto a metrics registry.

    ``entry_pdus``/``referral_pdus`` count search result messages;
    ``sync_entry_pdus``/``sync_dn_pdus`` count ReSync update messages
    carrying full entries vs DN-only actions (delete/retain);
    ``bytes_sent`` approximates wire volume using entry sizes.

    **Aliasing contract** (docs/OBSERVABILITY.md §3): every field is a
    property reading and writing the counter ``net.traffic.<field>`` in
    ``self.registry``.  The historical mutable-dataclass API is fully
    preserved — keyword construction, attribute assignment and ``+=``,
    :meth:`reset`, :meth:`snapshot` and :meth:`__sub__` all behave
    exactly as before the rebase (regression-tested in
    ``tests/obs/test_traffic_rebase.py``); ``snapshot()`` and
    subtraction return detached instances owning private registries.
    """

    __slots__ = ("registry", "_counters")

    def __init__(
        self,
        round_trips: int = 0,
        requests: int = 0,
        entry_pdus: int = 0,
        referral_pdus: int = 0,
        sync_entry_pdus: int = 0,
        sync_dn_pdus: int = 0,
        bytes_sent: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ):
        object.__setattr__(
            self, "registry", registry if registry is not None else MetricsRegistry()
        )
        counters: Dict[str, Counter] = {}
        initial = (
            round_trips,
            requests,
            entry_pdus,
            referral_pdus,
            sync_entry_pdus,
            sync_dn_pdus,
            bytes_sent,
        )
        for name, value in zip(TRAFFIC_FIELDS, initial):
            counter = self.registry.counter(_METRIC_PREFIX + name)
            if value:
                counter.set(counter.value + value)
            counters[name] = counter
        object.__setattr__(self, "_counters", counters)

    # ------------------------------------------------------------------
    # field aliasing
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        try:
            return counters[name].value
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value) -> None:
        counters = object.__getattribute__(self, "_counters")
        counter = counters.get(name)
        if counter is None:
            raise AttributeError(f"TrafficStats has no counter {name!r}")
        counter.set(value)

    # ------------------------------------------------------------------
    # historical API
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter."""
        for counter in self._counters.values():
            counter.reset()

    def snapshot(self) -> "TrafficStats":
        """An independent copy of the current counter values."""
        return TrafficStats(**self.as_dict())

    def as_dict(self) -> Dict[str, int]:
        """Field name → current value, in declaration order."""
        return {name: self._counters[name].value for name in TRAFFIC_FIELDS}

    def __sub__(self, other: "TrafficStats") -> "TrafficStats":
        mine = self.as_dict()
        theirs = other.as_dict()
        return TrafficStats(**{k: mine[k] - theirs[k] for k in TRAFFIC_FIELDS})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"TrafficStats({fields})"


class SimulatedNetwork:
    """URL-addressed registry of servers plus shared traffic counters.

    Owns a :class:`repro.obs.MetricsRegistry` (``self.registry``) that
    backs :attr:`stats` and the connection/latency instruments — the
    single export point for one experiment's protocol traffic.

    Since ISSUE 9 the network can run **pipelined** (docs/TRANSPORT.md):
    an embedded :class:`~repro.server.scheduler.DeterministicScheduler`
    drives batched persist fan-out (per-session
    :class:`~repro.sync.delivery.DeliveryQueue`) and pipelined request
    completion, while ``pipelined=False`` (the default) keeps the
    historical synchronous call-in/call-out path byte-for-byte intact as
    the equivalence oracle.

    Args:
        round_trip_latency_ms: simulated latency charged per round trip;
            purely additive bookkeeping (``elapsed_ms``), no sleeping.
        registry: metrics registry to report into (default: private).
        pipelined: route persist deliveries through per-session
            batching queues and charge real encoded-frame bytes.
        batch: batching/backpressure knobs for the persist queues
            (:class:`~repro.sync.delivery.BatchConfig`; default config
            when ``None``).
        wire_accurate: synchronous mode only — encode every persist
            notification as its own wire PDU
            (:func:`repro.ldap.ber.encode_sync_update`) and charge the
            exact frame length, what a real per-entry synchronous
            transport pays per notification.  This is the
            accounting-comparable control arm for the pipelined
            transport's batch frames (``bench_persist_fanout``); the
            default (``False``) keeps the historical estimate-based
            consumer-side charge byte-for-byte intact.
        scheduler: event loop to run on (default: a fresh
            :class:`DeterministicScheduler` seeded with *seed*, sharing
            this registry).
        seed: tie-break seed for the default scheduler.
    """

    def __init__(
        self,
        round_trip_latency_ms: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        pipelined: bool = False,
        batch=None,
        wire_accurate: bool = False,
        scheduler: Optional[DeterministicScheduler] = None,
        seed: int = 0,
    ):
        self._servers: Dict[str, DirectoryServer] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = TrafficStats(registry=self.registry)
        self.round_trip_latency_ms = round_trip_latency_ms
        self.pipelined = pipelined
        self.batch_config = batch
        self.wire_accurate = wire_accurate
        self.scheduler = (
            scheduler
            if scheduler is not None
            else DeterministicScheduler(seed, registry=self.registry)
        )
        #: Live persist delivery queues by session id (pipelined mode);
        #: queues unregister themselves on close.
        self.persist_queues: Dict[str, object] = {}
        self._elapsed = self.registry.gauge("net.latency.elapsed_ms")
        self._open = self.registry.gauge("net.connections.open")
        self._total = self.registry.counter("net.connections.total")
        # Live client connections keyed by id(), for forced
        # disconnection on a server crash window (see disconnect_server
        # / repro.server.faults).  A dict keeps open/close/crash
        # accounting O(1) per connection at 5k-session scale.
        self._live_connections: Dict[int, object] = {}
        #: Bumped once per simulated server crash; consumers holding a
        #: persist-mode subscription compare epochs to detect that their
        #: connection died with the old server incarnation.
        self.crash_epoch = 0

    @property
    def charges_persist_bytes(self) -> bool:
        """True when the transport itself charges persist notification
        bytes (as encoded batch frames, :meth:`charge_sync_batch`) —
        consumers must then skip their per-update estimate charge to
        avoid double counting."""
        return self.pipelined or self.wire_accurate

    def register(self, server: DirectoryServer) -> None:
        """Make *server* reachable at its URL."""
        self._servers[server.url] = server

    def resolve(self, url: str) -> DirectoryServer:
        """The server at *url*; raises :class:`KeyError` if unknown."""
        key = url.split("/", 3)[:3]
        normalized = "/".join(key)
        if normalized not in self._servers:
            raise KeyError(f"no server registered at {url!r}")
        return self._servers[normalized]

    def charge_round_trip(self) -> None:
        """Account one request/response exchange."""
        self.stats.round_trips += 1
        self.stats.requests += 1
        self._elapsed.inc(self.round_trip_latency_ms)

    def charge_entries(self, count: int, total_bytes: int = 0) -> None:
        """Account *count* search entry PDUs."""
        self.stats.entry_pdus += count
        self.stats.bytes_sent += total_bytes

    def charge_referrals(self, count: int) -> None:
        """Account *count* referral/continuation PDUs."""
        self.stats.referral_pdus += count

    def charge_sync_entry(self, entry_bytes: int) -> None:
        """Account one full-entry sync PDU (add/modify action)."""
        self.stats.sync_entry_pdus += 1
        self.stats.bytes_sent += entry_bytes

    def charge_sync_dn(self, dn_bytes: int = 64) -> None:
        """Account one DN-only sync PDU (delete/retain action)."""
        self.stats.sync_dn_pdus += 1
        self.stats.bytes_sent += dn_bytes

    def connection_opened(self, connection: Optional[object] = None) -> None:
        """Account one opened client connection (§5.2's scaling metric,
        reported as ``net.connections.open``/``.total``).

        When the caller passes the connection object it is registered
        for forced disconnection on a crash window
        (:meth:`disconnect_server`); counter-only callers may pass
        nothing, keeping the historical bare-accounting API.
        """
        self._open.inc()
        self._total.inc()
        if connection is not None:
            self._live_connections[id(connection)] = connection

    def connection_closed(self, connection: Optional[object] = None) -> None:
        self._open.set(max(0.0, self._open.value - 1))
        if connection is not None:
            self._live_connections.pop(id(connection), None)

    def disconnect_server(self, url: str) -> int:
        """Forcibly drop every registered connection to the server at
        *url* — what a crash does to its TCP connections.

        Each dropped connection's ``drop()`` method runs (closing it and
        decrementing ``net.connections.open`` exactly once); returns the
        number of connections dropped.  Persist-mode consumers detect
        the loss through :attr:`crash_epoch` and must re-subscribe —
        re-counting the connection, not leaking it.
        """
        victims = [
            conn
            for conn in list(self._live_connections.values())
            if getattr(getattr(conn, "server", None), "url", None) == url
        ]
        for conn in victims:
            drop = getattr(conn, "drop", None)
            if drop is not None:
                drop()
        return len(victims)

    # ------------------------------------------------------------------
    # synchronization exchange hooks (the fault-injection seam)
    # ------------------------------------------------------------------
    def sync_exchange(self, provider, request, control) -> List[Delivery]:
        """One poll-mode request/response exchange with *provider*.

        The perfect network charges one round trip and returns exactly
        one :class:`Delivery`.  Fault-injecting subclasses may raise
        :class:`TransportError` (before or after the provider ran) or
        return a duplicated/delayed delivery — see
        :class:`repro.server.faults.FaultyNetwork`.
        """
        self.charge_round_trip()
        return [Delivery(provider.handle(request, control))]

    def persist_exchange(self, provider, request, deliver, cookie=None):
        """Open a persist-mode session on *provider*.

        Returns ``(deliveries, handle)`` where *deliveries* carries the
        initial response.

        Synchronous mode: *deliver* is wrapped by :meth:`wrap_deliver`,
        so notification-level faults apply to the pushed stream too.

        Pipelined mode: *deliver* is handed to a per-session
        :class:`~repro.sync.delivery.DeliveryQueue` that batches
        notifications on the scheduler's virtual clock and flushes them
        through :meth:`deliver_batch` (the batch-boundary fault seam).
        The queue rides on the returned handle (``handle.delivery_queue``)
        and is closed with it.
        """
        self.charge_round_trip()
        response, handle = self._open_persist(provider, request, deliver, cookie)
        return [Delivery(response)], handle

    def _open_persist(self, provider, request, deliver, cookie):
        """Open the server-side persist session, routing *deliver*
        through the mode-appropriate path (shared with fault-injecting
        subclasses, which add their own exchange faults around it)."""
        if not self.pipelined:
            return provider.persist(
                request, self.wrap_deliver(deliver), cookie=cookie
            )
        from ..sync.delivery import DeliveryQueue

        queue = DeliveryQueue(
            deliver, network=self, scheduler=self.scheduler, config=self.batch_config
        )
        response, handle = provider.persist(request, queue, cookie=cookie)
        session_id = getattr(handle, "session_id", None)
        queue.session_id = session_id
        if session_id is not None:
            self.persist_queues[session_id] = queue
            queue.on_close = lambda q: self.persist_queues.pop(q.session_id, None)
        handle.delivery_queue = queue
        return response, handle

    def wrap_deliver(self, deliver: Callable) -> Callable:
        """Hook for notification-level faults; identity on the perfect
        network unless ``wire_accurate`` asks for per-PDU encoding."""
        if not self.wire_accurate or self.pipelined:
            return deliver
        from ..ldap.ber import encode_sync_update

        charge_entry = self.charge_sync_entry
        charge_dn = self.charge_sync_dn

        def wired(update):
            frame_len = len(encode_sync_update(update))
            if update.entry is not None:
                charge_entry(frame_len)
            else:
                charge_dn(frame_len)
            deliver(update)

        return wired

    def deliver_batch(self, deliver: Callable, updates: List) -> int:
        """Deliver one coalesced persist batch; returns PDUs delivered.

        Charges the batch's *encoded* wire length
        (:meth:`charge_sync_batch`) and invokes *deliver* per update.
        Fault-injecting subclasses override this to drop or truncate at
        batch boundaries on the independent ``:b`` seed stream
        (docs/PROTOCOL.md §9, docs/TRANSPORT.md §5).
        """
        if not updates:
            return 0
        self.charge_sync_batch(updates)
        for update in updates:
            deliver(update)
        return len(updates)

    def charge_sync_batch(self, updates: List) -> None:
        """Account one encoded sync batch frame.

        ``bytes_sent`` grows by the exact BER-encoded frame length
        (:func:`repro.ldap.ber.encoded_sync_batch_size`), making the
        byte metric encoded-length-accurate in pipelined mode; the
        per-kind PDU counters still count each carried update.
        """
        from ..ldap.ber import encoded_sync_batch_size

        for update in updates:
            if update.entry is not None:
                self.stats.sync_entry_pdus += 1
            else:
                self.stats.sync_dn_pdus += 1
        self.stats.bytes_sent += encoded_sync_batch_size(updates)

    def settle(self, max_events: int = 1_000_000) -> int:
        """Run the embedded scheduler until idle — every pending batch
        flush, ack and pipelined completion executes.  Returns events
        run.  Harmless (0) on a synchronous network."""
        return self.scheduler.run_until_idle(max_events=max_events)

    def reconcile_exchange(self, provider, request, rreq):
        """One sketch solicitation/response exchange (anti-entropy
        reconciliation, docs/PROTOCOL.md §11).

        Charges a round trip plus the sketch's measured wire bytes and
        returns the provider's
        :class:`~repro.sync.protocol.ReconcileResponse`.  Fault-injecting
        subclasses may raise :class:`TransportError` or corrupt the
        sketch in flight (a *detected* decode failure at the consumer).
        """
        self.charge_round_trip()
        response = provider.reconcile(request, rreq)
        self.stats.bytes_sent += response.pdu_bytes
        return response

    def reconcile_fetch_exchange(self, provider, request, fetch) -> List[Delivery]:
        """The follow-up targeted fetch of decoded master-only keys.

        The request's key list is charged here; the returned entry PDUs
        are charged by the consumer as it applies them (the normal
        ``charge_sync_entry`` path).
        """
        self.charge_round_trip()
        self.stats.bytes_sent += fetch.pdu_bytes
        return [Delivery(provider.reconcile_fetch(request, fetch))]

    @property
    def elapsed_ms(self) -> float:
        """Accumulated simulated latency (``net.latency.elapsed_ms``)."""
        return self._elapsed.value

    @elapsed_ms.setter
    def elapsed_ms(self, value: float) -> None:
        self._elapsed.set(value)

    @property
    def open_connections(self) -> int:
        return int(self._open.value)

    @open_connections.setter
    def open_connections(self, value: int) -> None:
        self._open.set(value)

    @property
    def total_connections(self) -> int:
        return self._total.value

    @total_connections.setter
    def total_connections(self, value: int) -> None:
        self._total.set(value)

    @property
    def servers(self) -> Dict[str, DirectoryServer]:
        """Registered servers by URL (read-only view by convention)."""
        return dict(self._servers)
