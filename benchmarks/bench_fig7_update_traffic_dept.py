"""E7 — Figure 7: update traffic vs hit ratio, department query.

Paper: department entries have a very low update rate, so subtree
update traffic is negligible; the filter replica's traffic is instead
dominated by the **second component** — entries fetched when
revolutions install newly selected filters (§7.3(b)).  Larger
revolution intervals (R=10000 vs 6000, scaled here to 1000 vs 600)
control this component at some cost in hit ratio.
"""

from __future__ import annotations

import pytest

from repro.core import FilterSelector, Generalizer, IdentityGeneralization
from repro.metrics import ReplicaDriver
from repro.workload import QueryType

from .common import BenchEnv, report, run_filter_point

DEPT_TEMPLATE = "(&(departmentnumber=_)(divisionnumber=_)(objectclass=department))"
UPDATES_PER_QUERY = 0.3
SYNC_INTERVAL = 250


def selector_factory(budget: int, interval: int):
    def make(replica, provider, master):
        return FilterSelector(
            replica,
            Generalizer([IdentityGeneralization(DEPT_TEMPLATE)]),
            ReplicaDriver.size_estimator_for(master),
            budget_entries=budget,
            revolution_interval=interval,
            provider=provider,
        )

    return make


@pytest.fixture(scope="module")
def fig7_rows(env: BenchEnv):
    eval_trace = env.trace.of_type(QueryType.DEPARTMENT)
    rows = []
    for interval, label in ((600, "filter R=600"), (1000, "filter R=1000")):
        for budget in (10, 20, 40, 80):
            result, _replica = run_filter_point(
                env,
                [],
                eval_trace,
                updates_per_query=UPDATES_PER_QUERY,
                sync_interval=SYNC_INTERVAL,
                selector_factory=selector_factory(budget, interval),
            )
            rows.append(
                (
                    label,
                    result.hit_ratio,
                    result.sync_entry_pdus,
                    result.revolution_entry_pdus,
                    result.resync_entry_pdus,
                )
            )

    # Subtree baseline: division subtrees, updates flowing via resync.
    div_hits = {}
    for record in env.day(1).of_type(QueryType.DEPARTMENT):
        div = str(record.scoped_request.base)
        div_hits[div] = div_hits.get(div, 0) + 1
    ranked = sorted(div_hits, key=div_hits.get, reverse=True)

    from repro.core import SubtreeReplica
    from repro.server import SimulatedNetwork
    from repro.sync import ResyncProvider
    from repro.workload.updates import UpdateGenerator

    for k in (2, 4, 8):
        master = env.fresh_master()
        provider = ResyncProvider(master)
        network = SimulatedNetwork()
        replica = SubtreeReplica("branch", network=network)
        for div_base in ranked[:k]:
            replica.add_context(div_base)
        replica.sync(provider)
        network.stats.reset()
        driver = ReplicaDriver(
            master,
            replica,
            provider=provider,
            update_generator=UpdateGenerator(env.directory, master),
            updates_per_query=UPDATES_PER_QUERY,
            sync_interval=SYNC_INTERVAL,
            use_scoped=True,
            network=network,
        )
        result = driver.run(eval_trace)
        rows.append(
            (
                "subtree",
                result.hit_ratio,
                result.sync_entry_pdus,
                0,
                result.sync_entry_pdus,
            )
        )
    return rows


def test_fig7_update_traffic_vs_hit_ratio_dept(benchmark, env: BenchEnv, fig7_rows):
    fast = [r for r in fig7_rows if r[0] == "filter R=600"]
    slow = [r for r in fig7_rows if r[0] == "filter R=1000"]
    subtree = [r for r in fig7_rows if r[0] == "subtree"]
    report(
        "fig7",
        "Update traffic vs hit ratio — department query (revolution component)",
        ["model", "hit ratio", "entry PDUs", "revolution", "resync"],
        fig7_rows,
        params={"query_type": "department", "revolution_intervals": "600,1000"},
        metrics={
            "r600_revolution_pdus": sum(r[3] for r in fast),
            "r1000_revolution_pdus": sum(r[3] for r in slow),
            "subtree_max_entry_pdus": max((r[2] for r in subtree), default=0),
        },
        paper_expected={
            "shape": "revolution component dominates; R=1000 below R=600"
        },
    )

    # Paper shape (a): filter-replica traffic is dominated by the
    # revolution component — department entries barely change.
    for _m, _hit, total, revolution, _resync in fast + slow:
        if total:
            assert revolution >= total * 0.5, (
                "revolution fetches must dominate department update traffic"
            )

    # Paper shape (b): the longer interval R=1000 produces less
    # revolution traffic than R=600 (the lower curve of Figure 7).
    assert sum(r[3] for r in slow) < sum(r[3] for r in fast)

    # Paper shape (c): subtree update traffic is negligible — the
    # department tree is almost static.
    assert all(r[2] <= 100 for r in subtree)

    # Timed unit: answering a department query against a loaded replica.
    from repro.core import FilterReplica
    from repro.server import SimulatedNetwork
    from repro.sync import ResyncProvider

    master = env.fresh_master()
    provider = ResyncProvider(master)
    replica = FilterReplica("bench", network=SimulatedNetwork())
    records = env.day(2).of_type(QueryType.DEPARTMENT)
    for record in records[:20]:
        replica.add_filter(record.request, provider)
    sample = records[0].request
    benchmark(lambda: replica.answer(sample))
