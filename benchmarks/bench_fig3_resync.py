"""E3 — Figure 3: an example ReSync session.

Paper: message sequence chart of a poll → poll → persist session over
entries E1..E5, with A/M/D/R updates in between.  The bench replays the
exact sequence, checks every PDU against the figure, and times a full
poll cycle (the protocol's steady-state unit of work).
"""

from __future__ import annotations


from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification
from repro.sync import ResyncProvider, SyncedContent

from .common import report


def build_master() -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for name in ("E1", "E2", "E3"):
        master.add(
            Entry(
                f"cn={name},o=xyz",
                {"objectClass": ["person"], "cn": name, "sn": "T"},
            )
        )
    return master


def test_fig3_resync_session(benchmark):
    master = build_master()
    request = SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)")
    provider = ResyncProvider(master)
    content = SyncedContent(request)
    rows = []

    # poll(null) → E1,E2,E3 add + cookie
    r1 = content.poll(provider)
    rows.append(("poll(null)", "E1,E2,E3 add", len(r1.updates)))
    assert r1.initial and len(r1.updates) == 3

    master.add(Entry("cn=E4,o=xyz", {"objectClass": ["person"], "cn": "E4", "sn": "T"}))
    master.delete("cn=E1,o=xyz")
    master.delete("cn=E2,o=xyz")
    master.modify("cn=E3,o=xyz", [Modification.replace("title", "mod")])

    # poll(cookie) → E4 add; E1,E2 delete; E3 mod + cookie1
    r2 = content.poll(provider)
    got = sorted((u.action.value, str(u.dn)) for u in r2.updates)
    assert got == [
        ("add", "cn=E4,o=xyz"),
        ("delete", "cn=E1,o=xyz"),
        ("delete", "cn=E2,o=xyz"),
        ("modify", "cn=E3,o=xyz"),
    ]
    rows.append(("poll(cookie)", "E4 add / E1,E2 del / E3 mod", len(r2.updates)))

    # persist(cookie1); E3 renamed → E3 delete + E5 add notifications
    notes = []
    r3, handle = provider.persist(request, notes.append, cookie=content.cookie)
    for update in r3.updates:
        content.apply_notification(update)
    master.modify_dn("cn=E3,o=xyz", new_rdn="cn=E5")
    assert [(u.action.value, str(u.dn)) for u in notes] == [
        ("delete", "cn=E3,o=xyz"),
        ("add", "cn=E5,o=xyz"),
    ]
    for update in notes:
        content.apply_notification(update)
    rows.append(("persist(cookie1)", "E3 del + E5 add (rename)", len(notes)))

    assert content.matches_master(master)
    handle.abandon()
    rows.append(("abandon", "session ended", 0))
    assert provider.active_session_count == 0

    report(
        "fig3",
        "ReSync example session (message sequence of Figure 3)",
        ["request", "PDUs sent", "count"],
        rows,
        params={"entries": 5, "modes": "poll,poll,persist"},
        metrics={
            "initial_updates": len(r1.updates),
            "poll_updates": len(r2.updates),
            "persist_notifications": len(notes),
        },
        paper_expected={
            "initial_updates": 3,
            "poll_updates": 4,
            "persist_notifications": 2,
        },
    )

    # Timed unit: a full poll cycle with one pending change.
    timed_master = build_master()
    timed_provider = ResyncProvider(timed_master)
    timed_content = SyncedContent(request)
    timed_content.poll(timed_provider)
    toggle = [0]

    def poll_cycle():
        toggle[0] += 1
        timed_master.modify(
            "cn=E3,o=xyz", [Modification.replace("title", f"t{toggle[0]}")]
        )
        timed_content.poll(timed_provider)

    benchmark(poll_cycle)
