"""Wire-level types of the ReSync protocol (§5.2).

A synchronization exchange is: the client (replica) attaches a
``reSyncControl = (mode, cookie)`` to a normal search request; the
server answers with a stream of update PDUs — each an entry (or bare
DN) plus a control specifying the action — followed by a cookie to
resume the session (poll mode).

:class:`SyncUpdate` is one update PDU; :class:`SyncResponse` is the
whole poll answer.  Traffic accounting rule (used by the experiments):
``add``/``modify`` PDUs carry the complete entry, ``delete``/``retain``
PDUs carry only the DN.

The anti-entropy reconcile exchange (docs/PROTOCOL.md §11) adds three
messages: :class:`ReconcileRequest` (sketch solicitation, sized by a
divergence hint or an explicit doubled cell count),
:class:`ReconcileResponse` (the served sketch plus the session cookie
minted for the follow-up fetch) and :class:`ReconcileFetch` (the
decoded master-only keys to pull as full entries; answered with a
plain :class:`SyncResponse`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ldap.controls import SyncAction
from ..ldap.dn import DN
from ..ldap.entry import Entry

__all__ = [
    "SyncUpdate",
    "SyncResponse",
    "SyncProtocolError",
    "ReconcileRequest",
    "ReconcileResponse",
    "ReconcileFetch",
]


class SyncProtocolError(Exception):
    """Protocol violation: unknown cookie, bad mode transition, etc."""


@dataclass(frozen=True)
class SyncUpdate:
    """One update/notification PDU.

    ``entry`` is present exactly when the action carries a full entry
    (add / modify); delete and retain carry only the DN.
    """

    action: SyncAction
    dn: DN
    entry: Optional[Entry] = None

    def __post_init__(self):
        carries_entry = self.action in (SyncAction.ADD, SyncAction.MODIFY)
        if carries_entry and self.entry is None:
            raise SyncProtocolError(f"{self.action.value} PDU requires an entry")
        if not carries_entry and self.entry is not None:
            raise SyncProtocolError(f"{self.action.value} PDU must not carry an entry")

    @property
    def pdu_bytes(self) -> int:
        """Approximate wire size of this PDU.

        Uses the entry's modelled size (the ``entrySizeBytes`` stamp
        emulating the paper's ~6KB employee entries).  For the *actual*
        BER-encoded size of the simulated entry, use
        :meth:`measured_bytes`.
        """
        if self.entry is not None:
            return self.entry.estimated_size()
        return len(str(self.dn)) or 8

    def measured_bytes(self) -> int:
        """Exact RFC 2251 BER wire size of this PDU's payload."""
        from ..ldap import ber

        if self.entry is not None:
            return ber.encoded_entry_size(self.entry)
        return ber.encoded_dn_size(self.dn)

    @classmethod
    def add(cls, entry: Entry) -> "SyncUpdate":
        return cls(SyncAction.ADD, entry.dn, entry.copy())

    @classmethod
    def modify(cls, entry: Entry) -> "SyncUpdate":
        return cls(SyncAction.MODIFY, entry.dn, entry.copy())

    @classmethod
    def delete(cls, dn: DN) -> "SyncUpdate":
        return cls(SyncAction.DELETE, dn)

    @classmethod
    def retain(cls, dn: DN) -> "SyncUpdate":
        return cls(SyncAction.RETAIN, dn)


@dataclass
class SyncResponse:
    """The server's answer to one synchronization request.

    Attributes:
        updates: the update PDUs, in application order.
        cookie: cookie to resume the session (poll mode); None after a
            ``sync_end`` or for persist deliveries.
        initial: True when this response carried the entire content
            (cookie was null — the first request of a session).
        uses_retain: True when the response follows the
            incomplete-history scheme of eq. (3): anything not retained,
            added or modified must be discarded by the replica.
    """

    updates: List[SyncUpdate] = field(default_factory=list)
    cookie: Optional[str] = None
    initial: bool = False
    uses_retain: bool = False

    @property
    def entry_pdus(self) -> int:
        """PDUs carrying full entries (add/modify)."""
        return sum(1 for u in self.updates if u.entry is not None)

    @property
    def dn_pdus(self) -> int:
        """DN-only PDUs (delete/retain)."""
        return sum(1 for u in self.updates if u.entry is None)

    @property
    def total_bytes(self) -> int:
        """Approximate wire size of all update PDUs."""
        return sum(u.pdu_bytes for u in self.updates)


@dataclass(frozen=True)
class ReconcileRequest:
    """Solicit an anti-entropy sketch over the provider's current
    content (docs/PROTOCOL.md §11).

    Attributes:
        divergence_hint: the consumer's estimate of the symmetric
            difference, used by the provider to size the first sketch
            (:func:`repro.sync.reconcile.cells_for_divergence`).
        cells: explicit cell count — set on doubling retries after a
            decode failure, overriding the hint.
        salt: hash salt; retries carry a fresh salt so a difference that
            cycled under one hashing peels under the next.
        cookie: the *previous attempt's* reconcile session, ended
            server-side before the new sketch is served (None on the
            first attempt).
    """

    divergence_hint: int = 8
    cells: Optional[int] = None
    salt: int = 0
    cookie: Optional[str] = None

    @property
    def pdu_bytes(self) -> int:
        """Approximate wire size: three small integers plus the cookie."""
        return 12 + len(self.cookie or "")


@dataclass
class ReconcileResponse:
    """The provider's sketch answer.

    ``sketch`` is an :class:`~repro.sync.reconcile.EntrySketch` over the
    provider's current content digests; ``cookie`` resumes the session
    minted at sketch time (presented by the follow-up
    :class:`ReconcileFetch`, and by every later poll once
    reconciliation succeeds); ``content_count`` lets the consumer
    sanity-check scale before decoding.
    """

    sketch: object
    cookie: str
    content_count: int = 0

    @property
    def pdu_bytes(self) -> int:
        """Measured wire size: the BER-encoded sketch plus the cookie."""
        return self.sketch.encoded_size() + len(self.cookie) + 8


@dataclass(frozen=True)
class ReconcileFetch:
    """Targeted per-entry fetch of the decoded master-only keys.

    ``keys`` are :func:`~repro.sync.reconcile.entry_key` values; the
    provider answers with ``add`` PDUs for every key still in content
    (a key deleted since the sketch is skipped — the session minted at
    sketch time carries the delete on the next poll).  ``cookie`` names
    that session.
    """

    keys: Tuple[int, ...]
    cookie: str

    @property
    def pdu_bytes(self) -> int:
        """Approximate wire size: one 64-bit key per fetch plus the
        cookie."""
        return 8 + 9 * len(self.keys) + len(self.cookie)
