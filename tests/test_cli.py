"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.ldap import parse_ldif


class TestGenDirectory:
    def test_writes_ldif(self, tmp_path, capsys):
        out = tmp_path / "dir.ldif"
        code = main(["gen-directory", "--employees", "50", "--out", str(out)])
        assert code == 0
        entries = list(parse_ldif(out.read_text()))
        assert len(entries) > 50
        assert any(str(e.dn) == "o=xyz" for e in entries)
        assert "wrote" in capsys.readouterr().err

    def test_stdout_output(self, capsys):
        assert main(["gen-directory", "--employees", "10", "--out", "-"]) == 0
        captured = capsys.readouterr()
        assert "dn: o=xyz" in captured.out


class TestGenCarrier:
    def test_writes_flat_ldif(self, tmp_path):
        out = tmp_path / "carrier.ldif"
        assert main(["gen-carrier", "--subscribers", "40", "--out", str(out)]) == 0
        entries = list(parse_ldif(out.read_text()))
        subscribers = [e for e in entries if e.has_attribute("telephoneNumber")]
        assert len(subscribers) == 40
        assert all(
            str(e.dn).endswith("ou=subscribers,o=telco") for e in subscribers
        )


class TestGenWorkload:
    def test_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        code = main(
            [
                "gen-workload",
                "--employees",
                "300",
                "--queries",
                "200",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 200
        day, qtype, scope, flt, base = lines[0].split("\t")
        assert day in ("1", "2")
        assert scope == "SUB"
        assert flt.startswith("(")

    def test_trace_loadable(self, tmp_path):
        from repro.workload import Trace

        out = tmp_path / "trace.txt"
        main(["gen-workload", "--employees", "300", "--queries", "50", "--out", str(out)])
        with open(out) as fh:
            loaded = Trace.load(fh)
        assert len(loaded) == 50

    def test_reports_mix(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        main(["gen-workload", "--employees", "300", "--queries", "500", "--out", str(out)])
        assert "serialNumber" in capsys.readouterr().err


class TestCaseStudy:
    def test_prints_comparison(self, capsys):
        code = main(
            [
                "case-study",
                "--employees",
                "600",
                "--queries",
                "800",
                "--filters",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "subtree" in out and "filter" in out
        assert "hit ratio" in out


class TestRecovery:
    def test_crash_recover_demo(self, tmp_path, capsys):
        code = main(
            [
                "recovery",
                "--journal-dir",
                str(tmp_path / "journal"),
                "--employees",
                "120",
                "--sessions",
                "4",
                "--updates",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sessions recovered : 4/4" in out
        assert "sync.durability.recoveries" in out
        # The journal survives on disk for a post-mortem.
        assert (tmp_path / "journal" / "journal.jsonl").exists()


class TestSnapshot:
    def test_warm_start_demo(self, tmp_path, capsys):
        code = main(
            [
                "snapshot",
                "--snapshot-dir",
                str(tmp_path / "replica"),
                "--employees",
                "120",
                "--updates",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replica synced     : 120 entries" in out
        assert "warm-start resume" in out and "(live)" in out
        assert "snapshot discarded" in out
        assert "sync.snapshot.discarded" in out
        # The rebuilt replica re-dumped a fresh, verifiable snapshot
        # over the discarded one.
        from repro.sync.snapshot import decode_snapshot

        text = (tmp_path / "replica" / "content.snapshot").read_text()
        assert len(decode_snapshot(text).entries) == 120


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])
