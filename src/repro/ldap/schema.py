"""Object class schema.

Every entry belongs to at least one object class (§2.2); the
``objectclass`` attribute determines its mandatory and optional
attributes.  This module models the small slice of X.500/RFC 2798 schema
the paper's directory uses — ``inetOrgPerson`` and its superiors, the
organizational container classes, and the special ``referral`` class
that terminates naming contexts (§2.3).

Schema checking is advisory: :func:`validate_entry` reports violations
but the store does not refuse schema-violating entries unless asked,
matching the loose behaviour of the deployed directories the paper
measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .entry import Entry

__all__ = [
    "ObjectClass",
    "SchemaRegistry",
    "DEFAULT_SCHEMA",
    "SchemaViolation",
    "validate_entry",
]


@dataclass(frozen=True)
class ObjectClass:
    """One object class definition.

    Attributes:
        name: class name (matched case-insensitively).
        superior: name of the parent class, or None for ``top``.
        must: attributes every entry of this class must carry.
        may: attributes entries of this class may carry.
        structural: whether the class is structural (vs abstract/aux).
    """

    name: str
    superior: Optional[str] = None
    must: FrozenSet[str] = frozenset()
    may: FrozenSet[str] = frozenset()
    structural: bool = True

    @property
    def key(self) -> str:
        return self.name.lower()


def _oc(
    name: str,
    superior: Optional[str] = None,
    must: Iterable[str] = (),
    may: Iterable[str] = (),
    structural: bool = True,
) -> ObjectClass:
    return ObjectClass(
        name=name,
        superior=superior,
        must=frozenset(a.lower() for a in must),
        may=frozenset(a.lower() for a in may),
        structural=structural,
    )


class SchemaRegistry:
    """Registry of object classes with superior-chain resolution."""

    def __init__(self, classes: Iterable[ObjectClass] = ()):
        self._classes: Dict[str, ObjectClass] = {}
        for oc in classes:
            self.register(oc)

    def register(self, object_class: ObjectClass) -> None:
        self._classes[object_class.key] = object_class

    def get(self, name: str) -> Optional[ObjectClass]:
        return self._classes.get(name.lower())

    def known(self, name: str) -> bool:
        return name.lower() in self._classes

    def effective_must(self, name: str) -> Set[str]:
        """MUST attributes of *name* including inherited ones."""
        must: Set[str] = set()
        for oc in self.superior_chain(name):
            must.update(oc.must)
        return must

    def effective_may(self, name: str) -> Set[str]:
        """MAY attributes of *name* including inherited ones."""
        may: Set[str] = set()
        for oc in self.superior_chain(name):
            may.update(oc.may)
        return may

    def superior_chain(self, name: str) -> List[ObjectClass]:
        """The class and its superiors, most derived first."""
        chain: List[ObjectClass] = []
        seen: Set[str] = set()
        current = self.get(name)
        while current is not None and current.key not in seen:
            chain.append(current)
            seen.add(current.key)
            current = self.get(current.superior) if current.superior else None
        return chain


def _standard_classes() -> Tuple[ObjectClass, ...]:
    return (
        _oc("top", must=("objectclass",), structural=False),
        _oc(
            "person",
            superior="top",
            must=("cn", "sn"),
            may=("telephoneNumber", "description", "seeAlso"),
        ),
        _oc(
            "organizationalPerson",
            superior="person",
            may=("ou", "title", "l", "st", "postalCode", "roomNumber"),
        ),
        # RFC 2798 — the paper's Figure 1 entry is an inetOrgPerson.
        _oc(
            "inetOrgPerson",
            superior="organizationalPerson",
            may=(
                "uid",
                "mail",
                "givenName",
                "employeeNumber",
                "departmentNumber",
                "manager",
                "serialNumber",
                "divisionNumber",
                "buildingName",
                "entrySizeBytes",
            ),
        ),
        _oc("organization", superior="top", must=("o",), may=("description", "l")),
        _oc(
            "organizationalUnit",
            superior="top",
            must=("ou",),
            may=("description", "l", "telephoneNumber"),
        ),
        _oc("country", superior="top", must=("c",), may=("description",)),
        _oc("locality", superior="top", may=("l", "st", "description")),
        _oc(
            "groupOfNames",
            superior="top",
            must=("cn", "member"),
            may=("description",),
        ),
        # Referral objects point to subordinate naming contexts (§2.3).
        _oc("referral", superior="top", must=("ref",)),
        # Department/division records of the paper's enterprise DIT.
        _oc(
            "department",
            superior="top",
            must=("departmentNumber",),
            may=("description", "divisionNumber", "cn", "l", "entrySizeBytes"),
        ),
        _oc(
            "division",
            superior="top",
            must=("divisionNumber",),
            may=("description", "cn", "entrySizeBytes"),
        ),
        _oc(
            "location",
            superior="top",
            must=("l",),
            may=("description", "buildingName", "postalCode", "c", "entrySizeBytes"),
        ),
    )


DEFAULT_SCHEMA = SchemaRegistry(_standard_classes())
"""Schema preloaded with the classes the paper's directory uses."""


@dataclass(frozen=True)
class SchemaViolation:
    """One schema problem found in an entry."""

    dn: str
    problem: str


def validate_entry(
    entry: Entry, schema: Optional[SchemaRegistry] = None
) -> List[SchemaViolation]:
    """Check *entry* against *schema*; returns a list of violations.

    Checks: at least one object class; all classes known; every effective
    MUST attribute present.  MAY attributes are not policed (real
    deployments commonly carry operational extras).
    """
    reg = schema if schema is not None else DEFAULT_SCHEMA
    violations: List[SchemaViolation] = []
    classes = entry.get("objectClass")
    if not classes:
        violations.append(SchemaViolation(str(entry.dn), "entry has no objectClass"))
        return violations
    for name in classes:
        if not reg.known(name):
            violations.append(
                SchemaViolation(str(entry.dn), f"unknown objectClass {name!r}")
            )
            continue
        for attr in reg.effective_must(name):
            if not entry.has_attribute(attr):
                violations.append(
                    SchemaViolation(
                        str(entry.dn),
                        f"missing MUST attribute {attr!r} of class {name!r}",
                    )
                )
    return violations
