"""E6 — Figure 6: update traffic vs hit ratio, serialNumber query.

Paper: at equal hit ratio the subtree replica transfers far more update
entries than the filter replica — "a direct consequence of the large
number of entries stored for the same hit-ratio".  The ReSync protocol
sends the minimal update set for the stored filters; subtree replicas
receive every modified entry in their (much larger) subtrees.

No dynamic selection here — §7.3(a): generalized serialNumber filters
can hold thousands of entries, so the filter set is static and traffic
has only the resync component.
"""

from __future__ import annotations

import pytest

from repro.workload import QueryType

from .common import (
    BenchEnv,
    block_filter,
    hot_blocks,
    hot_countries,
    report,
    run_filter_point,
    run_subtree_point,
)

UPDATES_PER_QUERY = 0.3
SYNC_INTERVAL = 250


@pytest.fixture(scope="module")
def fig6_rows(env: BenchEnv):
    eval_trace = env.day(2).of_type(QueryType.SERIAL)
    rows = []
    blocks = hot_blocks(env)
    for k in (5, 10, 20, 40):
        filters = [block_filter(b, cc) for b, cc, _h in blocks[:k]]
        result, _replica = run_filter_point(
            env,
            filters,
            eval_trace,
            updates_per_query=UPDATES_PER_QUERY,
            sync_interval=SYNC_INTERVAL,
        )
        rows.append(
            (
                "filter",
                result.replica_entries,
                result.hit_ratio,
                result.sync_entry_pdus,
                result.sync_dn_pdus,
            )
        )
    countries = [cc for cc, _h in hot_countries(env)]
    for k in (1, 2, 4):
        result, _replica = run_subtree_point(
            env,
            countries[:k],
            eval_trace,
            updates_per_query=UPDATES_PER_QUERY,
            sync_interval=SYNC_INTERVAL,
        )
        rows.append(
            (
                "subtree",
                result.replica_entries,
                result.hit_ratio,
                result.sync_entry_pdus,
                result.sync_dn_pdus,
            )
        )
    return rows


def test_fig6_update_traffic_vs_hit_ratio(benchmark, env: BenchEnv, fig6_rows):
    filter_rows = [r for r in fig6_rows if r[0] == "filter"]
    subtree_rows = [r for r in fig6_rows if r[0] == "subtree"]
    report(
        "fig6",
        "Update traffic vs hit ratio — serialNumber query",
        ["model", "entries", "hit ratio", "entry PDUs", "DN PDUs"],
        fig6_rows,
        params={
            "updates_per_query": UPDATES_PER_QUERY,
            "sync_interval": SYNC_INTERVAL,
        },
        metrics={
            "filter_max_entry_pdus": max(t for _m, _e, _h, t, _d in filter_rows),
            "subtree_max_entry_pdus": max(t for _m, _e, _h, t, _d in subtree_rows),
            "filter_points": len(filter_rows),
            "subtree_points": len(subtree_rows),
        },
        paper_expected={
            "shape": "subtree update traffic exceeds filter at equal hit ratio"
        },
    )

    # Shape: at comparable hit ratios, subtree update traffic exceeds
    # filter update traffic (paper: by a large factor).
    for _m, _e, shit, straffic, _sdn in subtree_rows:
        cheaper = [
            traffic
            for (_m2, _e2, fhit, traffic, _fdn) in filter_rows
            if fhit >= shit - 0.03
        ]
        if cheaper:
            assert min(cheaper) < straffic, (
                "filter replica must sync fewer entries at equal hit ratio"
            )

    # Traffic grows with replica size within each model.
    ftraffic = [t for _m, _e, _h, t, _d in filter_rows]
    straffic = [t for _m, _e, _h, t, _d in subtree_rows]
    assert ftraffic == sorted(ftraffic) or max(ftraffic) > 0
    assert straffic == sorted(straffic)

    # Timed unit: one sync poll cycle after a burst of master updates.
    from repro.server import SimulatedNetwork
    from repro.sync import ResyncProvider
    from repro.core import FilterReplica
    from repro.workload.updates import UpdateGenerator

    master = env.fresh_master()
    provider = ResyncProvider(master)
    replica = FilterReplica("bench", network=SimulatedNetwork())
    for b, cc, _h in hot_blocks(env)[:10]:
        replica.add_filter(block_filter(b, cc), provider)
    updates = UpdateGenerator(env.directory, master)

    def cycle():
        updates.apply(20)
        replica.sync(provider)

    benchmark(cycle)
