"""Building distributed directories: partitioning a DIT across servers.

§2.3: a directory is partitioned into naming contexts held by different
servers, glued together by referral objects (subordinate references) and
default referrals (superior references).  :class:`DistributedDirectory`
wires servers, contexts and glue entries onto one simulated network so
tests, examples and benchmarks can rebuild topologies like Figure 2 in
a few lines::

    dist = DistributedDirectory(network)
    host_a = dist.add_server("hostA", "o=xyz")
    host_b = dist.add_server("hostB", "ou=research,c=us,o=xyz",
                             default_referral="ldap://hostA")
    host_c = dist.add_server("hostC", "c=in,o=xyz",
                             default_referral="ldap://hostA")
    dist.add_referral("hostA", "ou=research,c=us,o=xyz", "hostB")
    dist.add_referral("hostA", "c=in,o=xyz", "hostC")
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..ldap.dn import DN
from ..ldap.entry import Entry
from .directory import DirectoryServer
from .network import SimulatedNetwork

__all__ = ["DistributedDirectory", "make_referral_entry"]


def make_referral_entry(dn: Union[DN, str], target_url: str) -> Entry:
    """Build a referral object (objectClass ``referral`` + ``ref`` URL)."""
    return Entry(dn, {"objectClass": ["referral", "top"], "ref": target_url})


class DistributedDirectory:
    """A set of servers jointly serving one DIT over a simulated network."""

    def __init__(self, network: Optional[SimulatedNetwork] = None):
        self.network = network if network is not None else SimulatedNetwork()
        self._servers: Dict[str, DirectoryServer] = {}

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------
    def add_server(
        self,
        name: str,
        *suffixes: Union[DN, str],
        default_referral: Optional[str] = None,
    ) -> DirectoryServer:
        """Create a server holding naming contexts at *suffixes*."""
        if name in self._servers:
            raise ValueError(f"server {name!r} already exists")
        server = DirectoryServer(name, default_referral=default_referral)
        for suffix in suffixes:
            server.add_naming_context(suffix)
        self._servers[name] = server
        self.network.register(server)
        return server

    def server(self, name: str) -> DirectoryServer:
        """The server named *name*."""
        return self._servers[name]

    @property
    def servers(self) -> List[DirectoryServer]:
        return list(self._servers.values())

    def add_referral(
        self,
        holding_server: str,
        at_dn: Union[DN, str],
        target_server: str,
    ) -> Entry:
        """Insert a subordinate-reference glue entry.

        The *holding_server* gets a referral object at *at_dn* pointing
        to *target_server* (which should hold a naming context rooted
        there).
        """
        holder = self._servers[holding_server]
        target = self._servers[target_server]
        glue = make_referral_entry(at_dn, target.url)
        holder.add(glue)
        return glue

    # ------------------------------------------------------------------
    # loading and inspection
    # ------------------------------------------------------------------
    def load_partitioned(self, entries: Iterable[Entry]) -> Dict[str, int]:
        """Distribute *entries* to the servers holding their contexts.

        Each entry goes to the server whose (most specific) naming
        context contains its DN, skipping DNs that sit below another
        server's referral glue on that server.  Returns per-server load
        counts.
        """
        counts: Dict[str, int] = {name: 0 for name in self._servers}
        ordered = sorted(entries, key=lambda e: len(e.dn))
        for entry in ordered:
            best_server: Optional[DirectoryServer] = None
            best_depth = -1
            for server in self._servers.values():
                context = server.context_for(entry.dn)
                if context is not None and len(context.suffix) > best_depth:
                    best_server = server
                    best_depth = len(context.suffix)
            if best_server is None:
                raise ValueError(f"no server holds a context for {entry.dn}")
            if entry.dn in best_server.store:
                continue  # referral glue already placed there
            best_server.store.put(entry)
            counts[best_server.name] += 1
        return counts

    def total_entries(self) -> int:
        """Entries across all servers (glue referral objects included)."""
        return sum(len(s.store) for s in self._servers.values())
