"""Metrics registry — named instruments for every layer of the stack.

The repository's measurement needs (docs/OBSERVABILITY.md) are served
by four instrument kinds, all dependency-free and cheap enough for the
simulation hot paths:

* :class:`Counter` — monotonically increasing count (``inc``); an
  explicit ``set`` exists only so legacy facades such as
  :class:`repro.server.network.TrafficStats` can alias their historical
  mutable fields onto registry counters.
* :class:`Gauge` — a value that goes up and down (``set``/``inc``/``dec``).
* :class:`Histogram` — fixed log-scale buckets (each bound a constant
  multiple of the previous), recording count, sum and per-bucket
  occupancy.
* :class:`Timer` — a histogram of seconds fed by a context manager.

Instruments have **hierarchical dotted names** (``layer.component.metric``,
e.g. ``sync.resync.entries_sent``) and optional **labels**: calling
``instrument.labels(op="search")`` returns a child instrument of the
same kind registered under the same name plus the label set, so one
logical metric fans out into per-dimension series.

A :class:`MetricsRegistry` is the unit of isolation — every
:class:`~repro.server.network.SimulatedNetwork` and
:class:`~repro.server.directory.DirectoryServer` owns one, so parallel
experiments never share counters.  Fault injection
(``net.fault.*``, :mod:`repro.server.faults`) and consumer resilience
(``sync.resilient.*``, :mod:`repro.sync.resilient`) record into the
owning network's registry under this same scheme — the per-``kind``
fault series are label children, per docs/PROTOCOL.md §9.
Exporters: :meth:`~MetricsRegistry.to_dict`
(JSON-friendly), :meth:`~MetricsRegistry.to_prometheus_text`
(Prometheus exposition format, dots mapped to underscores), and
:meth:`~MetricsRegistry.snapshot` with :func:`snapshot_diff` for
interval accounting.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "snapshot_diff",
    "default_buckets",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def default_buckets(
    start: float = 1e-6, factor: float = 4.0, count: int = 12
) -> Tuple[float, ...]:
    """Log-scale bucket bounds: ``start * factor**i`` for i in [0, count).

    The default spans 1µs … ~16.8s in twelve ×4 steps — wide enough for
    every simulated operation while keeping bucket search trivial.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("buckets need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


class Instrument:
    """Base: a named, optionally labeled instrument inside one registry."""

    kind = "instrument"

    def __init__(self, registry: "MetricsRegistry", name: str, labels: LabelKey = ()):
        self._registry = registry
        self.name = name
        self.label_values: LabelKey = labels

    def labels(self, **labels: str) -> "Instrument":
        """The child instrument for this label set (get-or-create)."""
        merged = dict(self.label_values)
        merged.update({k: str(v) for k, v in labels.items()})
        return self._registry._get_or_create(
            type(self), self.name, _label_key(merged), template=self
        )

    @property
    def full_name(self) -> str:
        """Name plus rendered labels, e.g. ``server.op.latency{op="search"}``."""
        return self.name + _label_suffix(self.label_values)

    def value_dict(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(Instrument):
    """Monotonic count. ``set`` exists only for facade aliasing/reset."""

    kind = "counter"

    def __init__(self, registry, name, labels=()):
        super().__init__(registry, name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def set(self, value: int) -> None:
        """Overwrite the count — for legacy-facade aliasing and syncing
        externally maintained counts (e.g. ``lru_cache`` statistics);
        new instrumentation should only ever :meth:`inc`."""
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def value_dict(self):
        return self.value


class Gauge(Instrument):
    """A value that can go up and down (sizes, open connections)."""

    kind = "gauge"

    def __init__(self, registry, name, labels=()):
        super().__init__(registry, name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def value_dict(self):
        return self.value


class Histogram(Instrument):
    """Fixed log-scale buckets; records count, sum, min, max, occupancy.

    ``bounds`` are the *upper* bounds of each finite bucket; one
    implicit +Inf bucket catches the tail.  Export is cumulative
    (Prometheus ``le`` convention).
    """

    kind = "histogram"

    def __init__(self, registry, name, labels=(), bounds: Optional[Sequence[float]] = None):
        super().__init__(registry, name, labels)
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else default_buckets()
        )
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # +Inf tail
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self._bucket_counts[i] += 1
                return
        self._bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def reset(self) -> None:
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def value_dict(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                ("+Inf" if math.isinf(b) else repr(b)): n
                for b, n in self.cumulative_buckets()
            },
        }


class Timer(Histogram):
    """A histogram of durations in seconds, fed by ``with timer.time():``."""

    kind = "timer"

    class _Timing:
        __slots__ = ("_timer", "_start")

        def __init__(self, timer: "Timer"):
            self._timer = timer
            self._start = 0.0

        def __enter__(self) -> "Timer._Timing":
            from time import perf_counter

            self._start = perf_counter()
            return self

        def __exit__(self, *exc) -> bool:
            from time import perf_counter

            self._timer.observe(perf_counter() - self._start)
            return False

    def time(self) -> "Timer._Timing":
        """Context manager observing the elapsed seconds of its block."""
        return Timer._Timing(self)


class MetricsRegistry:
    """Get-or-create home of named instruments.

    ``counter``/``gauge``/``histogram``/``timer`` return the existing
    instrument when the (name, labels) pair is already registered; a
    name registered under a different kind raises ``ValueError`` —
    names are global within a registry, exactly like Prometheus.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Instrument] = {}

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, _label_key(labels))

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, _label_key(labels))

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        return self._get_or_create(Histogram, name, _label_key(labels), bounds=bounds)

    def timer(self, name: str, **labels: str) -> Timer:
        return self._get_or_create(Timer, name, _label_key(labels))

    def _get_or_create(self, cls, name, labels: LabelKey, template=None, bounds=None):
        key = (name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"{name!r} already registered as {existing.kind}, "
                    f"requested {cls.kind}"
                )
            return existing
        if cls is Histogram or cls is Timer:
            if bounds is None and isinstance(template, Histogram):
                bounds = template.bounds
            instrument = cls(self, name, labels, bounds=bounds)
        else:
            instrument = cls(self, name, labels)
        self._instruments[key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # inspection and export
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Instrument]:
        return iter(
            sorted(self._instruments.values(), key=lambda i: (i.name, i.label_values))
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str, **labels: str) -> Optional[Instrument]:
        """The instrument at (name, labels), or None."""
        return self._instruments.get((name, _label_key(labels)))

    def reset(self) -> None:
        """Zero every instrument (bucket layouts are preserved)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly mapping ``full name -> value``.

        Counters and gauges map to numbers; histograms and timers map
        to ``{count, sum, mean, min, max, buckets}`` sub-dicts.
        """
        return {i.full_name: i.value_dict() for i in self}

    def snapshot(self) -> Dict[str, object]:
        """An independent copy of :meth:`to_dict` for interval diffing."""
        return self.to_dict()

    def to_prometheus_text(self) -> str:
        """Prometheus exposition format (name dots become underscores)."""
        lines: List[str] = []
        seen_types: set = set()
        for instrument in self:
            pname = instrument.name.replace(".", "_").replace("-", "_")
            if pname not in seen_types:
                kind = "histogram" if instrument.kind == "timer" else instrument.kind
                lines.append(f"# TYPE {pname} {kind}")
                seen_types.add(pname)
            labels = instrument.label_values
            if isinstance(instrument, Histogram):
                for bound, cum in instrument.cumulative_buckets():
                    le = "+Inf" if math.isinf(bound) else repr(bound)
                    lab = _label_suffix(labels + (("le", le),))
                    lines.append(f"{pname}_bucket{lab} {cum}")
                lab = _label_suffix(labels)
                lines.append(f"{pname}_sum{lab} {instrument.sum}")
                lines.append(f"{pname}_count{lab} {instrument.count}")
            else:
                lab = _label_suffix(labels)
                lines.append(f"{pname}{lab} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")


def snapshot_diff(
    after: Mapping[str, object], before: Mapping[str, object]
) -> Dict[str, object]:
    """Numeric element-wise ``after - before`` over snapshot dicts.

    Keys only present in *after* diff against zero; histogram sub-dicts
    are diffed recursively (min/max/mean are carried from *after* since
    they are not interval-additive).
    """
    out: Dict[str, object] = {}
    for key, value in after.items():
        prev = before.get(key)
        if isinstance(value, Mapping):
            prev_map = prev if isinstance(prev, Mapping) else {}
            sub: Dict[str, object] = {}
            for k, v in value.items():
                if k in ("min", "max", "mean"):
                    sub[k] = v
                elif isinstance(v, Mapping):
                    pv = prev_map.get(k)
                    sub[k] = snapshot_diff(v, pv if isinstance(pv, Mapping) else {})
                else:
                    pv = prev_map.get(k, 0)
                    sub[k] = v - pv if isinstance(pv, (int, float)) else v
            out[key] = sub
        elif isinstance(value, (int, float)):
            out[key] = value - (prev if isinstance(prev, (int, float)) else 0)
        else:
            out[key] = value
    return out
