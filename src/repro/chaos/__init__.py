"""Chaos soak engine: composable fault schedules over virtual hours.

Each fault primitive in :mod:`repro.server.faults` is individually
deterministic; this package sequences and overlaps them into
long-horizon, seed-replayable soak runs with continuous invariant
checking (docs/FAULTS.md §5):

* :class:`FaultSchedule` / :class:`FaultWindow` — declarative fault
  windows in absolute virtual time, armed onto the deterministic
  scheduler as one continuous :class:`~repro.server.faults.FaultPlan`;
* :class:`SoakRunner` / :class:`SoakConfig` — a master + N-tenant
  replica fleet driven through a :class:`~repro.workload.SoakScenario`
  load plan under the schedule, failing fast with
  :class:`InvariantViolation` (seed + virtual timestamp) when staleness
  honesty, journal-replay determinism or post-heal convergence breaks;
* :class:`SoakReport` — the run's observable outcome, fingerprintable
  for replay comparison and printable as the ``repro-ldap soak``
  fleet-status table.
"""

from .schedule import FaultSchedule, FaultWindow, combine_specs
from .soak import InvariantViolation, SoakConfig, SoakReport, SoakRunner

__all__ = [
    "FaultSchedule",
    "FaultWindow",
    "combine_specs",
    "SoakConfig",
    "SoakReport",
    "SoakRunner",
    "InvariantViolation",
]
