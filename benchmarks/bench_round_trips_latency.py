"""E15 — derived: remote round trips and latency vs hit ratio.

The paper's motivation (§1–§3): every query a partial replica answers
locally avoids a WAN exchange with the central directory; hit ratio is
the fraction of queries that never leave the site.  This bench closes
the loop — it drives the day-2 serialNumber workload against filter
replicas of growing size, chases every miss to the master over a
simulated WAN (150 ms per round trip vs 2 ms locally), and reports the
average per-query latency a remote user would see.
"""

from __future__ import annotations

import pytest

from repro.core import FilterReplica
from repro.server import LdapClient, SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import QueryType

from .common import BenchEnv, block_filter, hot_blocks, report

LAN_MS = 2.0
WAN_MS = 150.0
N_QUERIES = 1500


def run_config(env: BenchEnv, k: int):
    master = env.fresh_master()
    provider = ResyncProvider(master)
    wan = SimulatedNetwork(round_trip_latency_ms=WAN_MS)
    wan.register(master)
    client = LdapClient(wan)
    replica = FilterReplica("branch", network=SimulatedNetwork())
    for block, cc, _h in hot_blocks(env)[:k]:
        replica.add_filter(block_filter(block, cc), provider)

    queries = env.day(2).of_type(QueryType.SERIAL)[:N_QUERIES]
    hits = 0
    total_latency = 0.0
    wan_round_trips = 0
    for record in queries:
        total_latency += LAN_MS  # asking the local replica
        answer = replica.answer(record.request)
        if answer.is_hit:
            hits += 1
            continue
        before = wan.stats.round_trips
        chased = client.search(answer.referrals[0].url, record.request)
        assert chased.complete
        wan_round_trips += wan.stats.round_trips - before
        total_latency += (wan.stats.round_trips - before) * WAN_MS
    n = len(queries)
    return hits / n, wan_round_trips / n, total_latency / n


@pytest.fixture(scope="module")
def latency_rows(env: BenchEnv):
    rows = []
    for k in (0, 5, 25, 80):
        hit_ratio, wan_per_query, avg_ms = run_config(env, k)
        rows.append((k, hit_ratio, wan_per_query, avg_ms))
    return rows


def test_round_trips_and_latency_vs_hit_ratio(benchmark, env: BenchEnv, latency_rows):
    by_k = {k: (hit, wan, ms) for k, hit, wan, ms in latency_rows}
    report(
        "round_trips_latency",
        f"Remote round trips / latency vs hit ratio (WAN={WAN_MS:.0f}ms, LAN={LAN_MS:.0f}ms)",
        ["filters", "hit ratio", "WAN RT/query", "avg ms/query"],
        latency_rows,
        params={"wan_ms": WAN_MS, "lan_ms": LAN_MS, "queries": N_QUERIES},
        metrics={
            "baseline_avg_ms": by_k[0][2],
            "k25_avg_ms": by_k[25][2],
            "k25_hit_ratio": by_k[25][0],
            "round_trips": sum(wan for _k, _h, wan, _ms in latency_rows),
        },
        paper_expected={"shape": "latency falls monotonically as hit ratio rises"},
    )

    # No replica: every query crosses the WAN.
    assert by_k[0][1] >= 1.0

    # Latency falls monotonically as the hit ratio rises.
    latencies = [ms for _k, _h, _w, ms in latency_rows]
    assert latencies == sorted(latencies, reverse=True)

    # At the Figure 4 anchor (~0.5 hit ratio with 25 block filters) the
    # average latency is roughly halved.
    assert by_k[25][2] < 0.65 * by_k[0][2]

    # Timed unit: the local answer path (what a hit costs).
    master = env.fresh_master()
    provider = ResyncProvider(master)
    replica = FilterReplica("bench", network=SimulatedNetwork())
    for block, cc, _h in hot_blocks(env)[:25]:
        replica.add_filter(block_filter(block, cc), provider)
    sample = env.day(2).of_type(QueryType.SERIAL)[0].request
    benchmark(lambda: replica.answer(sample))
