"""The deterministic scheduler under the pipelined transport.

docs/TRANSPORT.md §2's determinism contract: same seed + same schedule
of calls → identical execution order, clock trajectory and instrument
values, across runs.  asyncio could not promise this; the explicit
run-queue must.
"""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.server.scheduler import DeterministicScheduler


class TestOrdering:
    def test_events_run_in_due_time_order(self):
        sched = DeterministicScheduler(seed=1)
        ran = []
        sched.call_later(30.0, ran.append, "c")
        sched.call_later(10.0, ran.append, "a")
        sched.call_later(20.0, ran.append, "b")
        sched.run_until_idle()
        assert ran == ["a", "b", "c"]
        assert sched.now == 30.0

    def test_call_soon_runs_at_current_time(self):
        sched = DeterministicScheduler()
        ran = []
        sched.call_later(5.0, ran.append, "later")
        sched.call_soon(ran.append, "soon")
        assert sched.run_next()
        assert ran == ["soon"]
        assert sched.now == 0.0

    def test_same_due_time_order_is_seed_stable(self):
        def order(seed):
            sched = DeterministicScheduler(seed=seed)
            ran = []
            for name in "abcdefgh":
                sched.call_later(1.0, ran.append, name)
            sched.run_until_idle()
            return ran

        assert order(7) == order(7)  # replayable
        # Different seeds shuffle ties differently for at least one of
        # a handful of seeds (statistically certain with 8 events).
        assert any(order(s) != order(7) for s in range(6))

    def test_clock_never_runs_backwards(self):
        sched = DeterministicScheduler()
        seen = []
        sched.call_later(10.0, lambda: (seen.append(sched.now), sched.call_soon(lambda: seen.append(sched.now))))
        sched.call_later(10.0, lambda: seen.append(sched.now))
        sched.run_until_idle()
        assert seen == sorted(seen)
        assert sched.now == 10.0

    def test_callback_scheduling_more_work(self):
        sched = DeterministicScheduler()
        ran = []

        def step(n):
            ran.append(n)
            if n < 3:
                sched.call_later(1.0, step, n + 1)

        sched.call_soon(step, 0)
        sched.run_until_idle()
        assert ran == [0, 1, 2, 3]
        assert sched.now == 3.0


class TestControl:
    def test_cancel(self):
        sched = DeterministicScheduler()
        ran = []
        event = sched.call_later(1.0, ran.append, "x")
        sched.call_later(2.0, ran.append, "y")
        sched.cancel(event)
        assert sched.pending == 1
        sched.run_until_idle()
        assert ran == ["y"]

    def test_negative_delay_rejected(self):
        sched = DeterministicScheduler()
        with pytest.raises(ValueError):
            sched.call_later(-1.0, lambda: None)

    def test_run_for_window(self):
        sched = DeterministicScheduler()
        ran = []
        sched.call_later(5.0, ran.append, "in")
        sched.call_later(15.0, ran.append, "out")
        assert sched.run_for(10.0) == 1
        assert ran == ["in"]
        assert sched.now == 10.0  # advanced to the deadline
        assert sched.pending == 1
        sched.run_until_idle()
        assert ran == ["in", "out"]

    def test_runaway_backstop(self):
        sched = DeterministicScheduler()

        def forever():
            sched.call_soon(forever)

        sched.call_soon(forever)
        with pytest.raises(RuntimeError):
            sched.run_until_idle(max_events=100)

    def test_idle_empty(self):
        sched = DeterministicScheduler()
        assert sched.idle
        assert not sched.run_next()


class TestDeterminism:
    def test_two_runs_identical_order_clock_and_metrics(self):
        def run():
            registry = MetricsRegistry()
            sched = DeterministicScheduler(seed=99, registry=registry)
            trace = []

            def tick(name):
                trace.append((name, sched.now))
                if len(trace) < 40:
                    # same-due fan-out: exercises tie-breaking
                    sched.call_later(2.0, tick, name + "x")
                    sched.call_later(2.0, tick, name + "y")

            sched.call_soon(tick, "r")
            sched.run_until_idle()
            return trace, sched.now, sched.events_run, registry.to_dict()

        first = run()
        second = run()
        assert first == second

    def test_metrics_registered(self):
        registry = MetricsRegistry()
        sched = DeterministicScheduler(registry=registry)
        sched.call_later(4.0, lambda: None)
        sched.run_until_idle()
        assert registry.counter("net.sched.events").value == 1
        assert registry.gauge("net.sched.now_ms").value == 4.0


class TestCallAt:
    def test_absolute_time_scheduling(self):
        sched = DeterministicScheduler(seed=1)
        ran = []
        sched.call_at(50.0, ran.append, "late")
        sched.call_at(10.0, ran.append, "early")
        sched.run_until_idle()
        assert ran == ["early", "late"]
        assert sched.now == 50.0

    def test_past_due_time_clamps_to_now(self):
        sched = DeterministicScheduler()
        sched.call_later(25.0, lambda: None)
        sched.run_until_idle()
        assert sched.now == 25.0
        ran = []
        sched.call_at(10.0, ran.append, "past")  # already behind the clock
        sched.run_until_idle()
        assert ran == ["past"]
        assert sched.now == 25.0  # ran immediately, no time travel
