"""Tests for the object-class schema registry and validation."""

from repro.ldap import DEFAULT_SCHEMA, Entry, ObjectClass, SchemaRegistry, validate_entry


class TestRegistry:
    def test_known_classes(self):
        for name in ("top", "person", "inetOrgPerson", "referral", "country"):
            assert DEFAULT_SCHEMA.known(name)

    def test_case_insensitive(self):
        assert DEFAULT_SCHEMA.get("INETORGPERSON") is DEFAULT_SCHEMA.get("inetOrgPerson")

    def test_superior_chain(self):
        chain = [oc.name for oc in DEFAULT_SCHEMA.superior_chain("inetOrgPerson")]
        assert chain == ["inetOrgPerson", "organizationalPerson", "person", "top"]

    def test_effective_must_inherits(self):
        must = DEFAULT_SCHEMA.effective_must("inetOrgPerson")
        assert {"cn", "sn", "objectclass"} <= must

    def test_effective_may_inherits(self):
        may = DEFAULT_SCHEMA.effective_may("inetOrgPerson")
        assert "mail" in may and "telephonenumber" in may

    def test_cycle_guard(self):
        reg = SchemaRegistry(
            [
                ObjectClass("a", superior="b"),
                ObjectClass("b", superior="a"),
            ]
        )
        chain = reg.superior_chain("a")
        assert len(chain) == 2  # terminates despite the cycle

    def test_unknown_get_returns_none(self):
        assert DEFAULT_SCHEMA.get("no-such-class") is None


class TestValidation:
    def test_valid_person(self):
        entry = Entry(
            "cn=a,o=xyz",
            {"objectClass": ["person", "top"], "cn": "a", "sn": "b"},
        )
        assert validate_entry(entry) == []

    def test_missing_must(self):
        entry = Entry("cn=a,o=xyz", {"objectClass": ["person", "top"], "cn": "a"})
        problems = validate_entry(entry)
        assert any("sn" in v.problem for v in problems)

    def test_no_objectclass(self):
        problems = validate_entry(Entry("cn=a,o=xyz", {"cn": "a"}))
        assert len(problems) == 1
        assert "no objectClass" in problems[0].problem

    def test_unknown_class_reported(self):
        entry = Entry("cn=a,o=xyz", {"objectClass": ["martian"], "cn": "a"})
        problems = validate_entry(entry)
        assert any("unknown" in v.problem for v in problems)

    def test_referral_class(self):
        entry = Entry(
            "c=in,o=xyz",
            {"objectClass": ["referral", "top"], "ref": "ldap://hostC"},
        )
        assert validate_entry(entry) == []

    def test_may_attributes_not_policed(self):
        entry = Entry(
            "cn=a,o=xyz",
            {
                "objectClass": ["person", "top"],
                "cn": "a",
                "sn": "b",
                "x-extra": "tolerated",
            },
        )
        assert validate_entry(entry) == []
