"""The ReSync filter-synchronization protocol (§5.2) — master side.

Two providers implement the two synchronization equations of §5.1:

* :class:`ResyncProvider` — **complete history** (eq. 2).  The master
  keeps a per-session history of entries leaving the content (via the
  update-listener hook of :class:`~repro.server.directory.DirectoryServer`)
  and each poll sends exactly the net adds, modifies and deletes since
  the last poll.  Supports both modes of update: ``poll`` (cookie-based
  resumption) and ``persist`` (an open connection carrying change
  notifications, extending the persistent-search idea of [15]).

* :class:`RetainResyncProvider` — **incomplete history** (eq. 3).  The
  master keeps no per-session state, only a per-entry last-change CSN.
  Each poll returns full entries for everything that changed since the
  cookie's CSN and still matches, plus a DN-only ``retain`` action for
  every unchanged in-content entry; the replica discards whatever is
  neither retained nor sent.  Convergent without history, at the price
  of one retain PDU per unchanged entry per poll.

Both speak the same request/response types, so the consumer
(:mod:`repro.sync.consumer`) and the experiments treat them uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..ldap.controls import ReSyncControl, SyncMode
from ..ldap.dn import DN
from ..ldap.query import SearchRequest
from ..obs.tracing import span
from ..server.directory import DirectoryServer
from ..server.operations import UpdateOp, UpdateRecord
from .protocol import SyncProtocolError, SyncResponse, SyncUpdate
from .router import SessionRouter
from .session import Session, SessionStore

__all__ = ["ResyncProvider", "RetainResyncProvider", "PersistHandle"]

DeliverFn = Callable[[SyncUpdate], None]


class PersistHandle:
    """Client-side handle to an open persist-mode connection.

    Abandoning the handle (``abandon()``) models the LDAP abandon
    operation on a persistent search (Figure 3 ends this way).
    """

    def __init__(self, provider: "ResyncProvider", session: Session):
        self._provider = provider
        self._session = session
        self.active = True

    def abandon(self) -> None:
        """Tear down the persistent connection without a sync_end."""
        if self.active:
            self._provider._end_persist(self._session)
            self.active = False


class ResyncProvider:
    """Complete-history ReSync master (eq. 2), one per master server.

    Registers itself as an update listener on *server*; every committed
    update is folded into each active session's pending actions.

    With ``routed=True`` (the default) the fan-out goes through a
    :class:`~repro.sync.router.SessionRouter`: only sessions whose
    holder/attribute-fingerprint/region summaries say the update *can*
    affect them are visited — a superset of the sessions the linear
    scan would notify (property-tested), visited in the same creation
    order with the same compiled-vs-interpreted-equivalent predicate,
    so the per-session notification streams are byte-identical.
    ``routed=False`` keeps the seed linear scan (the test oracle, also
    reachable as :meth:`on_update_linear`).

    Args:
        server: the master directory server.
        idle_limit: logical-time session expiry (the admin time limit).
        routed: route ``on_update`` through the session router.
    """

    def __init__(
        self,
        server: DirectoryServer,
        idle_limit: int = 100_000,
        routed: bool = True,
    ):
        self.server = server
        self.sessions = SessionStore(idle_limit=idle_limit)
        self.router: Optional[SessionRouter] = SessionRouter() if routed else None
        self._persist_callbacks: Dict[str, DeliverFn] = {}
        self._route_candidates = server.metrics.counter("sync.route.candidates")
        self._route_notified = server.metrics.counter("sync.route.notified")
        server.add_update_listener(self)

    # ------------------------------------------------------------------
    # update listener
    # ------------------------------------------------------------------
    def on_update(self, record: UpdateRecord) -> None:
        """Fold one committed master update into every affected session."""
        if self.router is None:
            self.on_update_linear(record)
            return
        # Phase 1: route, evaluate the exact membership predicate per
        # candidate, and advance *all* holder state before any delivery.
        # A persist deliver callback may update the master and re-enter
        # on_update mid-flush; with holders already advanced for every
        # affected session, the nested routing pass is complete, and the
        # nested visit happens between this record's deliveries exactly
        # where the linear scan would put it.
        routed = self.router.route(record)
        self._route_candidates.inc(len(routed))
        visits = []
        for rs in routed:
            session = self.sessions.get(rs.session_id)
            if session is None:
                self.router.unregister(rs.session_id)  # expired meanwhile
                continue
            in_before = record.before is not None and rs.selects(record.before)
            in_after = record.after is not None and rs.selects(record.after)
            if not in_before and not in_after:
                continue
            self.router.note_delivery(
                rs, in_before, in_after, record.dn, record.effective_dn
            )
            visits.append((session, in_before, in_after))
        self._route_notified.inc(len(visits))
        # Phase 2: notify, in session-creation order (== linear order).
        for session, in_before, in_after in visits:
            session.observe(
                in_before=in_before,
                in_after=in_after,
                old_dn=record.dn,
                new_dn=record.effective_dn,
                after_entry=record.after,
            )
            self._flush_persist(session)

    def on_update_linear(self, record: UpdateRecord) -> None:
        """The seed linear fan-out — every active session's filter is
        evaluated against the update (the routing-equivalence oracle)."""
        for session in self.sessions.active_sessions():
            request = session.request
            in_before = record.before is not None and request.selects(record.before)
            in_after = record.after is not None and request.selects(record.after)
            if not in_before and not in_after:
                continue
            session.observe(
                in_before=in_before,
                in_after=in_after,
                old_dn=record.dn,
                new_dn=record.effective_dn,
                after_entry=record.after,
            )
            self._flush_persist(session)

    def _flush_persist(self, session: Session) -> None:
        if session.persist_queue is None:
            return
        deliver = self._persist_callbacks.get(session.session_id)
        if deliver is None:
            return
        if session.draining:
            # Reentrant call: a deliver callback triggered a master
            # update, which re-entered on_update mid-delivery.  The new
            # notification is already queued; the outer drain loop picks
            # it up after the in-flight batch, preserving order.
            return
        session.draining = True
        try:
            while session.persist_queue:
                queued, session.persist_queue = session.persist_queue, []
                for update in queued:
                    deliver(update)
        finally:
            session.draining = False

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def handle(
        self,
        request: SearchRequest,
        control: ReSyncControl,
        deliver: Optional[DeliverFn] = None,
    ) -> SyncResponse:
        """Service one search request carrying a reSync control.

        The four cases of §5.2: (i) null cookie — initial request, whole
        content sent; (ii) cookie — session resumed, accumulated updates
        sent; (iii) mode ``persist`` — connection kept open, *deliver*
        called for each later change; (iv) mode ``poll`` — a resumption
        cookie is returned.  Mode ``sync_end`` terminates the session.

        **Partial-delivery safety** (docs/PROTOCOL.md §9): every
        response is safe to cut anywhere.  Batches order deletes before
        adds (:meth:`Session.drain`), every action is an idempotent
        state-setter, and the cookie travels *after* the update stream —
        so a consumer that applied only a prefix still holds its old
        cookie, retries at generation ``G-1``, and receives the retained
        batch again (:meth:`Session.retransmit`).  Over-delivery is
        harmless; the truncated tail is never silently lost.
        """
        response, _session = self._handle(request, control, deliver)
        return response

    def _handle(
        self,
        request: SearchRequest,
        control: ReSyncControl,
        deliver: Optional[DeliverFn] = None,
    ) -> tuple[SyncResponse, Optional[Session]]:
        if control.mode is SyncMode.SYNC_END:
            if control.cookie is not None:
                self._end_session(control.cookie)
            return SyncResponse(updates=[], cookie=None), None

        if control.cookie is None:
            # Initial request: the whole current content travels.
            with span("sync.resync.initial_content") as sp:
                session = self.sessions.create(request)
                content = self._search_content(request)
                session.seed_content(content)
                if self.router is not None:
                    self.router.register(session)
                    self.router.seed(session, (e.dn for e in content))
                updates = [SyncUpdate.add(e) for e in content]
                sp.add("entries_sent", len(updates))
            response = SyncResponse(updates=updates, initial=True)
        else:
            # Resumed session: scan the per-session history and emit the
            # coalesced net actions (eq. 2).
            with span("sync.resync.history_scan") as sp:
                session = self.sessions.lookup(control.cookie)
                if session.request != request:
                    raise SyncProtocolError(
                        "cookie presented with a different search request"
                    )
                updates = self.sessions.service_poll(session, control.cookie)
                sp.add("actions_emitted", len(updates))
            response = SyncResponse(updates=updates)

        if control.mode is SyncMode.PERSIST:
            if deliver is None:
                raise SyncProtocolError("persist mode requires a deliver callback")
            session.persist_queue = []
            self._persist_callbacks[session.session_id] = deliver
            response.cookie = None
        else:
            session.persist_queue = None
            self._persist_callbacks.pop(session.session_id, None)
            response.cookie = self.sessions.cookie_for(session)
        return response, session

    def persist(
        self,
        request: SearchRequest,
        deliver: DeliverFn,
        cookie: Optional[str] = None,
    ) -> tuple[SyncResponse, PersistHandle]:
        """Open a persist-mode session; returns (initial response, handle)."""
        control = ReSyncControl(mode=SyncMode.PERSIST, cookie=cookie)
        response, session = self._handle(request, control, deliver=deliver)
        assert session is not None
        return response, PersistHandle(self, session)

    # ------------------------------------------------------------------
    # failure hooks (docs/PROTOCOL.md §9)
    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Simulate a master crash/restart.

        The DIT survives (it is the server's, not the provider's), but
        every piece of in-memory protocol state dies with the process:
        session histories, unacked batches and persist callbacks.  Every
        outstanding cookie now names an unknown session, so the next
        poll from any consumer raises :class:`SyncProtocolError` and the
        consumer must take §5's reload path (``cookie=None``).  Persist
        streams simply stop; consumers detect the dead connection and
        re-subscribe.
        """
        self.sessions = SessionStore(idle_limit=self.sessions.idle_limit)
        self._persist_callbacks.clear()
        if self.router is not None:
            self.router.reset()

    def invalidate_cookie(self, cookie: str) -> None:
        """Expire the session named by *cookie* (the admin time limit
        firing early); its next presentation raises
        :class:`SyncProtocolError`."""
        self._end_session(cookie)

    def _end_session(self, cookie: str) -> None:
        """Terminate a session and drop its routing registration."""
        self.sessions.end(cookie)
        if self.router is not None:
            self.router.unregister(cookie.split(":", 1)[0])

    def _end_persist(self, session: Session) -> None:
        self._persist_callbacks.pop(session.session_id, None)
        self._end_session(session.session_id)

    def _search_content(self, request: SearchRequest):
        """Current master content of *request*, in deterministic DN
        order (so truncated initial deliveries are reproducible)."""
        result = self.server.search(request)
        return sorted(result.entries, key=lambda e: str(e.dn))

    @property
    def active_session_count(self) -> int:
        return len(self.sessions)


class RetainResyncProvider:
    """Incomplete-history ReSync master (eq. 3, ``retain`` actions).

    Keeps no per-session state: the cookie encodes the CSN of the last
    poll, and a per-entry last-change CSN map (maintained from the
    update stream) decides changed vs unchanged.
    """

    COOKIE_PREFIX = "csn"

    def __init__(self, server: DirectoryServer):
        self.server = server
        self._last_change: Dict[DN, int] = {}
        server.add_update_listener(self)

    def on_update(self, record: UpdateRecord) -> None:
        if record.op is UpdateOp.DELETE:
            self._last_change.pop(record.dn, None)
            return
        if record.op is UpdateOp.MODIFY_DN:
            self._last_change.pop(record.dn, None)
        self._last_change[record.effective_dn] = record.csn

    def handle(self, request: SearchRequest, control: ReSyncControl) -> SyncResponse:
        """Service a poll following eq. (3).

        Persist mode is not meaningful without history; only ``poll``
        and ``sync_end`` are accepted.
        """
        if control.mode is SyncMode.SYNC_END:
            return SyncResponse(updates=[], cookie=None)
        if control.mode is not SyncMode.POLL:
            raise SyncProtocolError(
                "RetainResyncProvider supports poll mode only"
            )
        # Stateless scan: the whole current content is re-derived and
        # classified changed/unchanged against the cookie CSN (eq. 3).
        with span("sync.resync.retain_scan") as sp:
            since = self._parse_cookie(control.cookie)
            now = self.server.current_csn
            content = self.server.search(request).entries
            updates: List[SyncUpdate] = []
            if control.cookie is None:
                updates.extend(SyncUpdate.add(e) for e in content)
                initial = True
            else:
                for entry in content:
                    changed_at = self._last_change.get(entry.dn, 0)
                    if changed_at > since:
                        updates.append(SyncUpdate.add(entry))
                    else:
                        updates.append(SyncUpdate.retain(entry.dn))
                initial = False
            sp.add("actions_emitted", len(updates))
        return SyncResponse(
            updates=updates,
            cookie=f"{self.COOKIE_PREFIX}:{now}",
            initial=initial,
            uses_retain=not initial,
        )

    def _parse_cookie(self, cookie: Optional[str]) -> int:
        if cookie is None:
            return 0
        prefix, _, csn = cookie.partition(":")
        if prefix != self.COOKIE_PREFIX or not csn.isdigit():
            raise SyncProtocolError(f"malformed cookie {cookie!r}")
        return int(csn)
