"""Routed replica answering must be byte-identical to the seed scan.

``FilterReplica(routing=False)`` preserves the seed linear containment
scan and interpreted evaluation — the oracle.  The property drives both
replicas through identical stored-filter sets, query streams, and
cache feedback, and requires identical answers: status, entry list
*including order*, ``answered_by`` attribution, and referrals.

The file also carries the satellite regressions that ride on this
subsystem: the union path's template pruning, cache containment-check
accounting, replica-size memoization, and the cache's refcounted
``entry_count``.
"""

from hypothesis import given, settings, strategies as st

from repro.core import FilterReplica, RecentQueryCache, TemplateRegistry
from repro.ldap import (
    And,
    DN,
    Entry,
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Scope,
    SearchRequest,
    Substring,
)
from repro.sync import SyncUpdate

_ATTRS = ["sn", "uid", "l"]
_VALUES = ["a", "ab", "abc", "b", "ba", "c"]
_attr = st.sampled_from(_ATTRS)
_value = st.sampled_from(_VALUES)

_leaves = st.one_of(
    st.builds(Equality, _attr, _value),
    st.builds(GreaterOrEqual, _attr, _value),
    st.builds(LessOrEqual, _attr, _value),
    st.builds(Present, _attr),
    st.builds(lambda a, v: Substring(a, initial=v), _attr, _value),
    st.builds(lambda a, v: Substring(a, final=v), _attr, _value),
)

_filters = st.recursive(
    _leaves,
    lambda kids: st.one_of(
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        kids.map(Not),
    ),
    max_leaves=5,
)

_BASES = ["", "o=xyz", "c=us,o=xyz"]
_requests = st.builds(
    SearchRequest,
    st.sampled_from(_BASES),
    st.sampled_from([Scope.SUB, Scope.ONE, Scope.BASE]),
    _filters,
)

_DN_POOL = [
    "o=xyz",
    "c=us,o=xyz",
    "cn=p0,c=us,o=xyz",
    "cn=p1,c=us,o=xyz",
    "cn=p2,o=xyz",
    "cn=p3,o=xyz",
]

_entry_values = st.lists(_value, max_size=2)
_entries = st.builds(
    lambda dn, svals, uvals, lvals: Entry(
        DN.parse(dn),
        {
            "objectClass": ["person"],
            "cn": "x",
            **({"sn": svals} if svals else {}),
            **({"uid": uvals} if uvals else {}),
            **({"l": lvals} if lvals else {}),
        },
    ),
    st.sampled_from(_DN_POOL),
    _entry_values,
    _entry_values,
    _entry_values,
)


def _entry_fp(entry):
    return (
        str(entry.dn),
        sorted((n, tuple(entry.get(n))) for n in entry.attribute_names()),
    )


def _answer_fp(answer):
    return (
        answer.status,
        [_entry_fp(e) for e in answer.entries],
        answer.answered_by,
        answer.referrals,
    )


def _drive(routing, directory, stored_requests, queries, capacity, unions, policy):
    replica = FilterReplica(
        "r",
        cache_capacity=capacity,
        compose_unions=unions,
        cache_policy=policy,
        routing=routing,
    )
    for request in stored_requests:
        replica.load_directly(
            request, [e for e in directory if request.selects(e)]
        )
    outcomes = []
    for query in queries:
        answer = replica.answer(query)
        outcomes.append(_answer_fp(answer))
        if not answer.is_hit:
            # Master-answered misses feed the cache on both sides.
            replica.observe_miss(
                query, [e for e in directory if query.selects(e)]
            )
    return outcomes


@settings(max_examples=80, deadline=None)
@given(
    st.lists(_entries, min_size=1, max_size=8, unique_by=lambda e: str(e.dn)),
    st.lists(_requests, min_size=1, max_size=6),
    st.lists(_requests, min_size=1, max_size=10),
    st.sampled_from([0, 3]),
    st.booleans(),
    st.sampled_from(["fifo", "lru"]),
)
def test_routed_answers_equal_linear(
    directory, stored_requests, queries, capacity, unions, policy
):
    routed = _drive(
        True, directory, stored_requests, queries, capacity, unions, policy
    )
    linear = _drive(
        False, directory, stored_requests, queries, capacity, unions, policy
    )
    assert routed == linear


_TEMPLATES = TemplateRegistry.from_strings("(sn=_)", "(uid=_)", "(|(sn=_)(uid=_))")


@settings(max_examples=60, deadline=None)
@given(
    st.lists(_entries, min_size=1, max_size=8, unique_by=lambda e: str(e.dn)),
    st.lists(_requests, min_size=1, max_size=6),
    st.lists(_requests, min_size=1, max_size=10),
)
def test_routed_answers_equal_linear_with_templates(
    directory, stored_requests, queries
):
    def drive(routing):
        replica = FilterReplica(
            "r", templates=_TEMPLATES, compose_unions=True, routing=routing
        )
        for request in stored_requests:
            replica.load_directly(
                request, [e for e in directory if request.selects(e)]
            )
        return [_answer_fp(replica.answer(q)) for q in queries]

    assert drive(True) == drive(False)


# ----------------------------------------------------------------------
# satellite regressions
# ----------------------------------------------------------------------


def _person(dn, **attrs):
    return Entry(
        dn,
        {
            "objectClass": ["person"],
            "cn": dn.split(",", 1)[0].split("=", 1)[1],
            **{k: [v] for k, v in attrs.items()},
        },
    )


def test_union_path_applies_template_pruning():
    """`_answer_union` must prune template-incompatible stored filters
    exactly like the direct path: the (mail=_) stored filter can never
    answer a (sn=_) disjunct, so no containment check is spent on it."""
    registry = TemplateRegistry.from_strings(
        "(sn=_)", "(mail=_)", "(|(sn=_)(mail=_))"
    )
    replica = FilterReplica(
        "r", templates=registry, compose_unions=True, routing=False
    )
    mail_req = SearchRequest("o=xyz", Scope.SUB, "(mail=b)")
    sn_req = SearchRequest("o=xyz", Scope.SUB, "(sn=a)")
    replica.load_directly(mail_req, [_person("cn=m,o=xyz", mail="b")])
    replica.load_directly(sn_req, [_person("cn=s,o=xyz", sn="a")])

    query = SearchRequest("o=xyz", Scope.SUB, "(|(sn=a)(mail=b))")
    answer = replica.answer(query)
    assert answer.is_hit
    assert answer.answered_by.startswith("union:")
    assert {str(e.dn) for e in answer.entries} == {"cn=s,o=xyz", "cn=m,o=xyz"}
    # Direct path: 2 checks (the OR query vs both stored filters).
    # Union path: 1 per disjunct — the cross-template pair is pruned,
    # where the seed burned a third check on (sn=a) vs (mail=b).
    assert replica.containment_checks == 4


def test_cache_containment_checks_counted_and_labeled():
    replica = FilterReplica("r", cache_capacity=4)
    wide = SearchRequest("o=xyz", Scope.SUB, "(sn=a*)")
    replica.observe_miss(wide, [_person("cn=s,o=xyz", sn="ab")])

    narrow = SearchRequest("o=xyz", Scope.SUB, "(sn=ab)")
    before = replica.containment_checks
    answer = replica.answer(narrow)
    assert answer.is_hit and answer.answered_by.startswith("cache:")
    # The cache's checks now surface in the replica's §7.4 metric…
    assert replica.containment_checks == before + 1
    assert replica.cache.containment_checks == 1
    # …and in the labeled counter split.
    cache_counter = replica.metrics.counter(
        "core.replica.containment_checks", source="cache"
    )
    assert cache_counter.value == 1

    replica.add_filter(SearchRequest("o=xyz", Scope.SUB, "(uid=x)"))
    replica.answer(SearchRequest("o=xyz", Scope.SUB, "(uid=x)"))
    stored_counter = replica.metrics.counter(
        "core.replica.containment_checks", source="stored"
    )
    assert stored_counter.value == 1


def test_replica_sizes_memoized_with_invalidation(monkeypatch):
    replica = FilterReplica("r")
    first = SearchRequest("o=xyz", Scope.SUB, "(sn=*)")
    e1 = _person("cn=a,o=xyz", sn="a")
    e2 = _person("cn=b,o=xyz", sn="b")
    stored = replica.load_directly(first, [e1])

    sizing_calls = []
    true_size = Entry.estimated_size
    monkeypatch.setattr(
        Entry,
        "estimated_size",
        lambda self: sizing_calls.append(1) or true_size(self),
    )

    assert replica.entry_count() == 1
    baseline = replica.size_bytes()
    after_first = len(sizing_calls)
    assert replica.size_bytes() == baseline
    assert replica.entry_count() == 1
    assert len(sizing_calls) == after_first  # memo hit: no re-walk

    # Content mutation through the sync path invalidates the memo.
    stored.content.apply_notification(SyncUpdate.add(e2))
    assert replica.entry_count() == 2
    assert replica.size_bytes() > baseline
    assert len(sizing_calls) > after_first

    # Overlapping filters still dedup by DN, and removal invalidates.
    second = SearchRequest("o=xyz", Scope.SUB, "(uid=*)")
    replica.load_directly(second, [e2])
    assert replica.entry_count() == 2
    replica.remove_filter(second)
    assert replica.entry_count() == 2
    replica.remove_filter(first)
    assert replica.entry_count() == 0


def test_cache_entry_count_refcounted():
    cache = RecentQueryCache(capacity=2)
    e1 = _person("cn=a,o=xyz", sn="a")
    e2 = _person("cn=b,o=xyz", sn="b")
    e3 = _person("cn=c,o=xyz", sn="c")
    q1 = SearchRequest("o=xyz", Scope.SUB, "(sn=a)")
    q2 = SearchRequest("o=xyz", Scope.SUB, "(sn=b)")
    q3 = SearchRequest("o=xyz", Scope.SUB, "(sn=c)")

    cache.insert(q1, [e1, e2])
    cache.insert(q2, [e2, e3])
    assert cache.entry_count() == 3
    cache.insert(q3, [e3])  # evicts q1; e1 leaves, e2 survives via q2
    assert cache.entry_count() == 2
    cache.insert(q2, [e1])  # refresh replaces q2's result set
    assert cache.entry_count() == 2  # {e1, e3}
    cache.clear()
    assert cache.entry_count() == 0
