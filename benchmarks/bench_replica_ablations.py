"""E16 — replica-side ablations: template pruning and cache policy.

Two design choices DESIGN.md calls out, isolated on the same workload:

* **Template pruning** (§3.4.2's first simplification): with a template
  registry, queries that no stored template can answer are rejected
  up front and incompatible stored filters are skipped, cutting the
  containment comparisons per query ("additional query processing
  overhead … is directly proportional to the number of stored
  filters", §7.4).
* **Cache replacement policy**: the paper's recent-query window is a
  FIFO of arrivals; LRU (hits refresh) is the classical alternative.
  With popularity skew on top of temporal locality, LRU retains hot
  queries longer.
"""

from __future__ import annotations

import pytest

from repro.core import FilterReplica, TemplateRegistry
from repro.server import SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import QueryType

from .common import BenchEnv, block_filter, hot_blocks, report

TEMPLATES = TemplateRegistry.from_strings(
    "(serialnumber=_)",
    "(serialnumber=_*_)",
    "(mail=_)",
    "(&(departmentnumber=_)(divisionnumber=_)(objectclass=department))",
    "(&(l=_)(objectclass=_))",
)
N_FILTERS = 50
N_QUERIES = 3000


def run_replica(env: BenchEnv, templates, cache_policy="fifo", cache=0):
    master = env.fresh_master()
    provider = ResyncProvider(master)
    # routing=False pins the paper's linear containment scan: template
    # pruning is a simplification of *that* scan (§7.4's "directly
    # proportional to the number of stored filters"), and the routed
    # answer path (bench_replica_scaling) already narrows candidates so
    # far that there is nothing left for templates to prune.  amq=False
    # keeps the prescreens (docs/ROUTING.md §10) out of the same scan:
    # the negative result cache short-circuits repeated misses, which
    # would deflate the check counts this ablation compares.
    replica = FilterReplica(
        "branch",
        network=SimulatedNetwork(),
        templates=templates,
        cache_capacity=cache,
        cache_policy=cache_policy,
        routing=False,
        amq=False,
    )
    for block, cc, _h in hot_blocks(env)[:N_FILTERS]:
        replica.add_filter(block_filter(block, cc), provider)
    hits = 0
    for record in env.day(2)[:N_QUERIES]:
        answer = replica.answer(record.request)
        if answer.is_hit:
            hits += 1
        elif cache:
            replica.observe_miss(record.request, master.search(record.request).entries)
    return hits / N_QUERIES, replica.containment_checks


@pytest.fixture(scope="module")
def ablation_rows(env: BenchEnv):
    rows = []
    hit_plain, checks_plain = run_replica(env, templates=None)
    rows.append(("no templates", hit_plain, checks_plain))
    hit_tmpl, checks_tmpl = run_replica(env, templates=TEMPLATES)
    rows.append(("template pruning", hit_tmpl, checks_tmpl))

    hit_fifo, _ = run_replica(env, templates=None, cache=50, cache_policy="fifo")
    rows.append(("cache FIFO/50", hit_fifo, 0))
    hit_lru, _ = run_replica(env, templates=None, cache=50, cache_policy="lru")
    rows.append(("cache LRU/50", hit_lru, 0))
    return rows


def test_replica_ablations(benchmark, env: BenchEnv, ablation_rows):
    by_name = {row[0]: row for row in ablation_rows}
    report(
        "replica_ablations",
        f"Template pruning & cache policy over {N_QUERIES} mixed queries, "
        f"{N_FILTERS} stored filters",
        ["configuration", "hit ratio", "containment checks"],
        ablation_rows,
        params={"queries": N_QUERIES, "stored_filters": N_FILTERS},
        metrics={
            "plain_checks": by_name["no templates"][2],
            "pruned_checks": by_name["template pruning"][2],
            "fifo_hit": by_name["cache FIFO/50"][1],
            "lru_hit": by_name["cache LRU/50"][1],
        },
        paper_expected={
            "shape": "template pruning cuts checks without changing hit ratio"
        },
    )

    # Template pruning must not change what is answerable here (every
    # workload template is registered) while cutting the checks hard.
    assert abs(by_name["template pruning"][1] - by_name["no templates"][1]) < 0.01
    assert by_name["template pruning"][2] < 0.6 * by_name["no templates"][2]

    # LRU retains the hot queries at least as well as FIFO on this
    # popularity-skewed workload.
    assert by_name["cache LRU/50"][1] >= by_name["cache FIFO/50"][1] - 0.005

    # Timed unit: the pruned answer path.
    master = env.fresh_master()
    provider = ResyncProvider(master)
    replica = FilterReplica(
        "bench", network=SimulatedNetwork(), templates=TEMPLATES
    )
    for block, cc, _h in hot_blocks(env)[:N_FILTERS]:
        replica.add_filter(block_filter(block, cc), provider)
    sample = env.day(2).of_type(QueryType.MAIL)[0].request  # pruned instantly
    benchmark(lambda: replica.answer(sample))
