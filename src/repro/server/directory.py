"""The simulated LDAP directory server.

A :class:`DirectoryServer` holds one or more **naming contexts** (§2.3):
subtrees rooted at a *suffix* entry and terminated by leaf entries or
special *referral objects* pointing to subordinate naming contexts held
elsewhere.  Formally a context is ``C = (S, R1..Rn)``.

The server implements the LDAP functional model:

* **search** — distributed name resolution (superior/default referral
  when the target is not held locally), scope traversal, filter
  evaluation (index-accelerated), continuation references for referral
  objects inside the search region, attribute projection;
* **update operations** — add, modify, delete, modifyDN (subtree move);
  every committed update is assigned a change sequence number (CSN) and
  pushed to registered :class:`UpdateListener`\\ s — the hook the
  synchronization mechanisms of :mod:`repro.sync` build on.

Referral objects are ordinary entries with object class ``referral`` and
a ``ref`` attribute holding the subordinate server's URL; the subtree
beneath a referral object is *not* held by this server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Set, Tuple, Union

from ..ldap.attributes import AttributeRegistry, DEFAULT_REGISTRY
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.matching import compile_filter
from ..ldap.query import Scope, SearchRequest
from ..ldap.schema import DEFAULT_SCHEMA, SchemaRegistry, validate_entry
from ..obs.registry import Counter, MetricsRegistry
from .backend import EntryStore
from .planner import SearchPlan
from .operations import (
    LdapError,
    Modification,
    ModType,
    OperationInstruments,
    Referral,
    ResultCode,
    SearchResult,
    UpdateOp,
    UpdateRecord,
    timed_operation,
)

__all__ = ["NamingContext", "DirectoryServer", "UpdateListener"]

REFERRAL_CLASS = "referral"


@dataclass(frozen=True)
class NamingContext:
    """Meta information for one held naming context: ``C = (S, R1..Rn)``.

    ``referral_dns`` is computed on demand from the live store (referral
    objects can be added/removed at runtime), so this dataclass records
    only the suffix; :meth:`DirectoryServer.context_referrals` supplies
    the ``Ri``.
    """

    suffix: DN

    def contains(self, dn: DN) -> bool:
        """True when *dn* lies inside this context's subtree region."""
        return self.suffix.is_ancestor_or_self(dn)


class UpdateListener(Protocol):
    """Anything observing committed updates at a master server."""

    def on_update(self, record: UpdateRecord) -> None:
        """Called synchronously after each committed update."""
        ...  # pragma: no cover - protocol


class DirectoryServer:
    """One simulated directory server (master or replica substrate).

    Args:
        name: host name used in referral URLs, e.g. ``hostA``.
        default_referral: URL of the superior server to refer clients to
            when name resolution fails (Figure 2's "default referral"),
            or None to answer ``NO_SUCH_OBJECT``.
        registry / schema: attribute and object-class registries.
        check_schema: when True, add/modify reject schema violations.
        metrics: observability registry receiving the ``server.op.*``
            instruments (default: a private registry).
    """

    #: SUBTREE candidate sets larger than this intersect with the
    #: store's sorted subtree range instead of doing per-DN scope checks.
    RANGE_SCAN_THRESHOLD = 64

    def __init__(
        self,
        name: str,
        default_referral: Optional[str] = None,
        registry: Optional[AttributeRegistry] = None,
        schema: Optional[SchemaRegistry] = None,
        check_schema: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.name = name
        self.default_referral = default_referral
        #: when True, connections must bind before update operations
        #: (see :mod:`repro.server.connection`).
        self.updates_require_bind = False
        #: when True, the server maintains the ``createTimestamp`` /
        #: ``modifyTimestamp`` operational attributes as logical CSNs —
        #: what real servers do with wall-clock timestamps, and what
        #: tombstone-style synchronization reads (§5.2).
        self.maintain_timestamps = False
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._schema = schema if schema is not None else DEFAULT_SCHEMA
        self._check_schema = check_schema
        self.store = EntryStore(self._registry)
        #: per-operation latency/count instruments (``server.op.*``,
        #: docs/OBSERVABILITY.md §3); reads via ``self.metrics.to_dict()``.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ops = OperationInstruments(self.metrics)
        #: search-planner accounting (``server.plan.*``, docs/PLANNER.md):
        #: strategy choices plus candidates examined vs. matched.
        self._plan_examined = self.metrics.counter("server.plan.examined")
        self._plan_matched = self.metrics.counter("server.plan.matched")
        self._plan_strategy_counters: Dict[str, Counter] = {}
        self._contexts: List[NamingContext] = []
        self._listeners: List[UpdateListener] = []
        self._csn = 0
        #: degraded stale-read mode (``server.degraded`` gauge): set by a
        #: resilient sync consumer when this server is a replica whose
        #: master is unreachable.  Searches still answer — availability
        #: over freshness — but every result is stamped ``degraded=True``
        #: so callers can tell a stale read from a fresh one.
        self._degraded = self.metrics.gauge("server.degraded")

    @property
    def url(self) -> str:
        """This server's LDAP URL."""
        return f"ldap://{self.name}"

    # ------------------------------------------------------------------
    # degraded (stale-read) mode
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while this server is serving stale reads (its master is
        unreachable; see :class:`repro.sync.ResilientConsumer`)."""
        return bool(self._degraded.value)

    def enter_degraded(self) -> None:
        """Mark this server as serving stale reads (master unreachable).

        Searches keep answering from the last synchronized content —
        the graceful-degradation trade: availability over freshness —
        with every :class:`SearchResult` stamped ``degraded=True``.
        """
        self._degraded.set(1)

    def exit_degraded(self) -> None:
        """Back in sync with the master: results are fresh again."""
        self._degraded.set(0)

    # ------------------------------------------------------------------
    # naming contexts
    # ------------------------------------------------------------------
    def add_naming_context(self, suffix: Union[DN, str]) -> NamingContext:
        """Register a naming context rooted at *suffix*.

        The suffix entry itself must subsequently be added via
        :meth:`add`; registration only exempts it from the
        parent-must-exist rule.
        """
        suffix_dn = suffix if isinstance(suffix, DN) else DN.parse(suffix)
        context = NamingContext(suffix_dn)
        self._contexts.append(context)
        self.store.register_root(suffix_dn)
        return context

    @property
    def naming_contexts(self) -> Tuple[NamingContext, ...]:
        return tuple(self._contexts)

    def context_for(self, dn: DN) -> Optional[NamingContext]:
        """The most specific held context containing *dn*, or None."""
        best: Optional[NamingContext] = None
        for context in self._contexts:
            if context.contains(dn):
                if best is None or best.suffix.is_suffix_of(context.suffix):
                    best = context
        return best

    def context_referrals(self, context: NamingContext) -> List[DN]:
        """DNs of referral objects inside *context* (the ``Ri`` of §2.3)."""
        return sorted(
            (dn for dn in self.store.referral_dns() if context.contains(dn)),
            key=str,
        )

    @staticmethod
    def _is_referral(entry: Entry) -> bool:
        return REFERRAL_CLASS in entry.object_classes

    # ------------------------------------------------------------------
    # update listeners
    # ------------------------------------------------------------------
    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register *listener* for every subsequently committed update."""
        self._listeners.append(listener)

    def remove_update_listener(self, listener: UpdateListener) -> None:
        """Deregister *listener*; idempotent (a provider being replaced
        after crash recovery may detach more than once)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _commit(self, record: UpdateRecord) -> UpdateRecord:
        for listener in self._listeners:
            listener.on_update(record)
        return record

    def _stamp(self, entry: Entry, csn: int, created: bool) -> None:
        """Maintain operational timestamps (logical CSNs) when enabled."""
        if not self.maintain_timestamps:
            return
        if created:
            entry.put("createTimestamp", str(csn))
        entry.put("modifyTimestamp", str(csn))

    def _next_csn(self) -> int:
        self._csn += 1
        return self._csn

    @property
    def current_csn(self) -> int:
        """CSN of the most recently committed update (0 when pristine)."""
        return self._csn

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    @timed_operation("search")
    def search(
        self, request: SearchRequest, controls: Sequence["object"] = ()
    ) -> SearchResult:
        """Evaluate a search operation against this server.

        Performs the name-resolution and continuation-reference logic of
        §2.3: a base outside every held context yields the default
        (superior) referral; referral objects inside the search region
        yield one continuation reference each and their subtrees are not
        descended into.

        Null-based searches (base = root DN, §3.1.1's minimally
        directory enabled applications) are answered across all held
        contexts when this server is authoritative (no superior
        referral configured); a distributed member refers them upward.
        """
        if request.base.is_root:
            if self.default_referral is not None:
                return SearchResult(
                    referrals=[Referral(self.default_referral, request.base)],
                    code=ResultCode.REFERRAL,
                )
            if self._contexts:
                return self._search_all_contexts(request, controls)
            return SearchResult(code=ResultCode.NO_SUCH_OBJECT)

        context = self.context_for(request.base)
        if context is None:
            if self.default_referral is not None:
                return SearchResult(
                    referrals=[Referral(self.default_referral, request.base)],
                    code=ResultCode.REFERRAL,
                )
            return SearchResult(code=ResultCode.NO_SUCH_OBJECT)

        base_entry = self.store.get(request.base)
        if base_entry is None:
            # The base may lie under a referral object we hold: then the
            # client must continue at the subordinate server.
            referral = self._referral_above(request.base, context)
            if referral is not None:
                return SearchResult(referrals=[referral], code=ResultCode.REFERRAL)
            return SearchResult(code=ResultCode.NO_SUCH_OBJECT)

        if self._is_referral(base_entry) and request.scope is not Scope.BASE:
            target = self._referral_of(base_entry, request.base)
            return SearchResult(referrals=[target], code=ResultCode.REFERRAL)

        result = SearchResult()
        plan = self.store.plan_for(request.filter)
        predicate = compile_filter(request.filter, self._registry)
        examined = matched = 0
        for entry in self._iter_region(request, plan.candidates):
            if self._is_referral(entry):
                if entry.dn != request.base:
                    result.referrals.append(self._referral_of(entry, entry.dn))
                continue
            examined += 1
            if predicate(entry):
                matched += 1
                result.entries.append(request.project(entry))
        self._record_plan(plan, examined, matched)
        self._apply_controls(result, controls)
        if self._degraded.value:
            result.degraded = True
        return result

    def _record_plan(self, plan: SearchPlan, examined: int, matched: int) -> None:
        counter = self._plan_strategy_counters.get(plan.strategy)
        if counter is None:
            counter = self.metrics.counter(
                "server.plan.strategy", strategy=plan.strategy
            )
            self._plan_strategy_counters[plan.strategy] = counter
        counter.inc()
        self._plan_examined.inc(examined)
        self._plan_matched.inc(matched)

    def _apply_controls(self, result: SearchResult, controls: Sequence["object"]) -> None:
        """Apply search controls to a result (RFC 2891 sorting, §2.2)."""
        from ..ldap.controls import SortControl

        for control in controls:
            if isinstance(control, SortControl) and control.keys:

                def sort_key(entry: Entry):
                    parts = []
                    for attr in control.keys:
                        atype = self._registry.get(attr)
                        value = entry.first(attr)
                        # Absent values sort last, per RFC 2891.
                        parts.append(
                            (value is None, str(atype.normalize(value or "")))
                        )
                    return tuple(parts)

                result.entries.sort(key=sort_key, reverse=control.reverse)

    def _search_all_contexts(
        self, request: SearchRequest, controls: Sequence["object"] = ()
    ) -> SearchResult:
        """Answer a null-based subtree search across every held context.

        BASE/ONE scopes on the (virtual) root match nothing — the root
        has no entry; SUBTREE covers the union of the context subtrees.
        """
        merged = SearchResult()
        if request.scope is not Scope.SUB:
            return merged
        seen = set()
        for context in self._contexts:
            partial = self.search(request.with_base(context.suffix))
            if partial.code is not ResultCode.SUCCESS:
                continue
            for entry in partial.entries:
                if entry.dn not in seen:
                    seen.add(entry.dn)
                    merged.entries.append(entry)
            merged.referrals.extend(partial.referrals)
        self._apply_controls(merged, controls)
        if self._degraded.value:
            merged.degraded = True
        return merged

    def _iter_region(
        self, request: SearchRequest, candidates: Optional[Set[DN]]
    ) -> Iterable[Entry]:
        """Entries in the search region, pruned below referral objects.

        Referral objects themselves are yielded (the caller turns them
        into continuation references).  When the planner produced a
        candidate set for a ONE/SUBTREE search, iterate candidates
        instead of walking the region — but referral objects in the
        region must still surface, so they are scanned separately
        (there are few).  Large SUBTREE candidate sets intersect with
        the store's sorted subtree range instead of paying a per-DN
        ancestry check.
        """
        if request.scope is Scope.BASE or candidates is None:
            yield from self._walk_region(request.base, request.scope)
            return
        if (
            request.scope is Scope.SUB
            and len(candidates) > self.RANGE_SCAN_THRESHOLD
        ):
            for dn in self.store.subtree_region(request.base):
                if dn in candidates and not self._under_referral(dn, request.base):
                    entry = self.store.get(dn)
                    if entry is not None:
                        yield entry
        else:
            for dn in candidates:
                if request.in_scope(dn):
                    entry = self.store.get(dn)
                    if entry is not None and not self._under_referral(
                        dn, request.base
                    ):
                        yield entry
        # Referral objects in the region must surface even when the
        # index skipped them; the store keeps them indexed separately.
        for dn in self.store.referral_dns():
            if dn in candidates or dn == request.base:
                continue
            if request.in_scope(dn) and not self._under_referral(dn, request.base):
                entry = self.store.get(dn)
                if entry is not None:
                    yield entry

    def _walk_region(self, base: DN, scope: Scope) -> Iterable[Entry]:
        if scope is Scope.BASE:
            entry = self.store.get(base)
            if entry is not None:
                yield entry
            return
        if scope is Scope.ONE:
            for child_dn in self.store.children_of(base):
                yield self.store.get(child_dn)
            return
        stack = [base]
        while stack:
            dn = stack.pop()
            entry = self.store.get(dn)
            if entry is not None:
                yield entry
                if self._is_referral(entry) and dn != base:
                    continue  # do not descend below a referral object
            stack.extend(self.store.children_of(dn))

    def _referral_of(self, entry: Entry, target: DN) -> Referral:
        url = entry.first("ref") or (self.default_referral or self.url)
        return Referral(url, target)

    def _referral_above(self, dn: DN, context: NamingContext) -> Optional[Referral]:
        for ancestor in dn.ancestors():
            if not context.contains(ancestor):
                break
            entry = self.store.get(ancestor)
            if entry is not None and self._is_referral(entry):
                return self._referral_of(entry, dn)
        return None

    def _under_referral(self, dn: DN, base: DN) -> bool:
        """True when *dn* sits strictly below a referral object (not held)."""
        for ancestor in dn.ancestors():
            if ancestor == base:
                break
            entry = self.store.get(ancestor)
            if entry is not None and self._is_referral(entry):
                return True
        return False

    # ------------------------------------------------------------------
    # update operations
    # ------------------------------------------------------------------
    @timed_operation("add")
    def add(self, entry: Entry) -> UpdateRecord:
        """Add *entry*; parent must exist (or be a context suffix)."""
        if self.context_for(entry.dn) is None:
            raise LdapError(
                ResultCode.NO_SUCH_OBJECT, f"no naming context for {entry.dn}"
            )
        if entry.dn in self.store:
            raise LdapError(ResultCode.ENTRY_ALREADY_EXISTS, str(entry.dn))
        if not self.store.has_parent(entry.dn):
            raise LdapError(
                ResultCode.NO_SUCH_OBJECT, f"parent of {entry.dn} not found"
            )
        if self._check_schema:
            violations = validate_entry(entry, self._schema)
            if violations:
                raise LdapError(
                    ResultCode.OBJECT_CLASS_VIOLATION, violations[0].problem
                )
        csn = self._next_csn()
        stored = entry.copy()
        self._stamp(stored, csn, created=True)
        self.store.put(stored)
        return self._commit(
            UpdateRecord(
                csn=csn,
                op=UpdateOp.ADD,
                dn=entry.dn,
                after=self.store.get(entry.dn).copy(),
            )
        )

    @timed_operation("modify")
    def modify(self, dn: Union[DN, str], modifications: Sequence[Modification]) -> UpdateRecord:
        """Apply LDAP modify semantics to the entry at *dn*."""
        target = dn if isinstance(dn, DN) else DN.parse(dn)
        entry = self.store.get(target)
        if entry is None:
            raise LdapError(ResultCode.NO_SUCH_OBJECT, str(target))
        before = entry.copy()
        updated = entry.copy()
        for mod in modifications:
            if mod.mod_type is ModType.ADD:
                updated.add_values(mod.attr, list(mod.values))
            elif mod.mod_type is ModType.REPLACE:
                updated.put(mod.attr, list(mod.values))
            elif mod.mod_type is ModType.DELETE:
                updated.remove_values(mod.attr, list(mod.values) or None)
        if self._check_schema:
            violations = validate_entry(updated, self._schema)
            if violations:
                raise LdapError(
                    ResultCode.OBJECT_CLASS_VIOLATION, violations[0].problem
                )
        csn = self._next_csn()
        self._stamp(updated, csn, created=False)
        self.store.put(updated)
        return self._commit(
            UpdateRecord(
                csn=csn,
                op=UpdateOp.MODIFY,
                dn=target,
                before=before,
                after=updated.copy(),
                modifications=tuple(modifications),
            )
        )

    @timed_operation("delete")
    def delete(self, dn: Union[DN, str]) -> UpdateRecord:
        """Delete the (leaf) entry at *dn*."""
        target = dn if isinstance(dn, DN) else DN.parse(dn)
        if target not in self.store:
            raise LdapError(ResultCode.NO_SUCH_OBJECT, str(target))
        if self.store.has_children(target):
            raise LdapError(ResultCode.NOT_ALLOWED_ON_NON_LEAF, str(target))
        before = self.store.delete(target)
        return self._commit(
            UpdateRecord(
                csn=self._next_csn(),
                op=UpdateOp.DELETE,
                dn=target,
                before=before,
            )
        )

    def delete_subtree(self, dn: Union[DN, str]) -> List[UpdateRecord]:
        """Delete *dn* and everything beneath it, child-first."""
        target = dn if isinstance(dn, DN) else DN.parse(dn)
        if target not in self.store:
            raise LdapError(ResultCode.NO_SUCH_OBJECT, str(target))
        doomed = sorted(self.store.subtree_dns(target), key=len, reverse=True)
        return [self.delete(d) for d in doomed]

    @timed_operation("modify_dn")
    def modify_dn(
        self,
        dn: Union[DN, str],
        new_rdn: Optional[str] = None,
        new_superior: Optional[Union[DN, str]] = None,
    ) -> List[UpdateRecord]:
        """Rename/move the entry at *dn* (and its subtree).

        Emits one MODIFY_DN record per affected entry so downstream
        synchronization sees every DN change (§5.2: a rename is a delete
        action for the old DN followed by an add for the new one, from
        the point of view of a filter's content).
        """
        old_dn = dn if isinstance(dn, DN) else DN.parse(dn)
        entry = self.store.get(old_dn)
        if entry is None:
            raise LdapError(ResultCode.NO_SUCH_OBJECT, str(old_dn))
        superior = (
            old_dn.parent
            if new_superior is None
            else (new_superior if isinstance(new_superior, DN) else DN.parse(new_superior))
        )
        if new_superior is not None and superior not in self.store:
            if self.context_for(superior) is None or not self.store.has_parent(superior):
                raise LdapError(ResultCode.NO_SUCH_OBJECT, f"new superior {superior}")
        rdn_text = new_rdn if new_rdn is not None else str(old_dn.rdn)
        new_dn = superior.child(rdn_text)
        if new_dn == old_dn:
            raise LdapError(ResultCode.UNWILLING_TO_PERFORM, "no-op modifyDN")
        if new_dn in self.store:
            raise LdapError(ResultCode.ENTRY_ALREADY_EXISTS, str(new_dn))
        if old_dn.is_ancestor_or_self(new_dn):
            raise LdapError(
                ResultCode.UNWILLING_TO_PERFORM, "cannot move a subtree under itself"
            )

        records: List[UpdateRecord] = []
        moved = sorted(self.store.subtree_dns(old_dn), key=len)
        for source in moved:
            source_entry = self.store.delete(source)
            target_dn = source.rename(old_dn, new_dn)
            renamed = source_entry.with_dn(target_dn)
            if source == old_dn:
                # Update the naming attribute of the renamed entry itself.
                new_leaf = target_dn.rdn
                renamed.put(new_leaf.attr, [new_leaf.value])
            csn = self._next_csn()
            self._stamp(renamed, csn, created=False)
            self.store.put(renamed)
            records.append(
                self._commit(
                    UpdateRecord(
                        csn=csn,
                        op=UpdateOp.MODIFY_DN,
                        dn=source,
                        before=source_entry,
                        after=self.store.get(target_dn).copy(),
                        new_dn=target_dn,
                    )
                )
            )
        return records

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def load(self, entries: Iterable[Entry]) -> int:
        """Bulk-add entries (parents before children); returns the count.

        Loading bypasses update listeners — it models the initial state
        of the master, not live updates.
        """
        count = 0
        for entry in sorted(entries, key=lambda e: len(e.dn)):
            if self.context_for(entry.dn) is None:
                raise LdapError(
                    ResultCode.NO_SUCH_OBJECT, f"no naming context for {entry.dn}"
                )
            if not self.store.has_parent(entry.dn):
                raise LdapError(
                    ResultCode.NO_SUCH_OBJECT, f"parent of {entry.dn} not found"
                )
            self.store.put(entry)
            count += 1
        return count

    def __repr__(self) -> str:
        suffixes = ", ".join(str(c.suffix) for c in self._contexts)
        return f"DirectoryServer({self.name!r}, contexts=[{suffixes}], {len(self.store)} entries)"
