"""Long-horizon soak scenario: the load plan the chaos engine drives.

The figure benches replay the paper's two-day trace query-by-query; the
soak engine (:mod:`repro.chaos`) instead needs *hours of simulated
time* with realistic load shape, because the failure modes it hunts —
budget exhaustion, quarantine flapping, convergence after long
partitions — only show up against a clock.  This module turns a
:class:`ScenarioConfig` into a deterministic per-tick plan:

* **diurnal update waves** — the master's update rate follows a sine
  wave over the configured day length (quiet nights, busy middays),
  the directory-update analogue of the paper's observation that query
  traffic is strongly time-of-day dependent (§7.1);
* **flash-crowd query bursts** — short windows in which read traffic
  multiplies (an application stampede against the replicas), placed by
  the scenario seed;
* **region renames** — rare re-org waves: every employee of one
  division block is re-numbered in a single tick, the correlated-churn
  event that moves many entries across filter contents at once
  (`Es01`/`Es10` storms, §5.2).

Everything is derived from ``ScenarioConfig.seed``: the same config
yields the identical tick plan, which is what makes a soak run
replayable end-to-end (the chaos engine's core promise).  The plan is
*data*, not behavior — :class:`~repro.chaos.SoakRunner` owns applying
it to a master and its replica fleet.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ldap.query import Scope, SearchRequest
from ..server.directory import DirectoryServer
from ..server.operations import Modification
from .datagen import ORG_SUFFIX, EnterpriseDirectory

__all__ = ["ScenarioConfig", "TickLoad", "SoakScenario", "RegionRenamer"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Shape of the soak load plan (all derived from ``seed``).

    Attributes:
        seed: fixes flash-crowd placement, rename ticks and the
            fractional-update dithering — the whole plan.
        duration_hours: simulated horizon.
        tick_ms: virtual milliseconds per tick (one sync/update round).
        base_updates_per_tick: mean master updates per tick before the
            diurnal wave scales it.
        diurnal_amplitude: relative swing of the update wave in
            ``[0, 1]`` — 0.75 means middays run 1.75×, nights 0.25×.
        diurnal_period_hours: length of one simulated "day".
        base_queries_per_tick: background read traffic per replica.
        flash_crowds: number of burst windows across the horizon.
        flash_crowd_ticks: length of each burst window, in ticks.
        flash_crowd_queries: per-replica reads during a burst tick.
        region_renames: number of re-org waves across the horizon.
    """

    seed: int = 11
    duration_hours: float = 3.0
    tick_ms: float = 60_000.0
    base_updates_per_tick: float = 4.0
    diurnal_amplitude: float = 0.75
    diurnal_period_hours: float = 24.0
    base_queries_per_tick: int = 2
    flash_crowds: int = 2
    flash_crowd_ticks: int = 3
    flash_crowd_queries: int = 40
    region_renames: int = 1

    def __post_init__(self):
        if self.duration_hours <= 0:
            raise ValueError("duration_hours must be > 0")
        if self.tick_ms <= 0:
            raise ValueError("tick_ms must be > 0")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")

    @property
    def ticks(self) -> int:
        return max(1, int(round(self.duration_hours * 3_600_000.0 / self.tick_ms)))


@dataclass(frozen=True)
class TickLoad:
    """One tick of the plan: what the soak runner applies at ``at_ms``."""

    tick: int
    at_ms: float
    updates: int
    queries: int
    flash_crowd: bool = False
    region_rename: bool = False


class SoakScenario:
    """The materialized tick plan: ``SoakScenario(config).ticks``.

    Deterministic: two scenarios built from equal configs are
    tick-for-tick identical (regression-tested in
    ``tests/chaos/test_soak.py``).
    """

    def __init__(self, config: Optional[ScenarioConfig] = None):
        self.config = config if config is not None else ScenarioConfig()
        self.ticks: Tuple[TickLoad, ...] = tuple(self._plan())

    def _plan(self) -> List[TickLoad]:
        cfg = self.config
        rng = random.Random(f"scenario:{cfg.seed}")
        n = cfg.ticks
        burst_ticks = self._windows(rng, n, cfg.flash_crowds, cfg.flash_crowd_ticks)
        rename_ticks = set(
            rng.sample(range(n), min(cfg.region_renames, n))
            if cfg.region_renames > 0
            else []
        )
        plan: List[TickLoad] = []
        for tick in range(n):
            hours = tick * cfg.tick_ms / 3_600_000.0
            # Trough at t=0 (the soak starts "at night"), peak half a
            # period in — so a short soak still sweeps rising load.
            wave = 1.0 - cfg.diurnal_amplitude * math.cos(
                2.0 * math.pi * hours / cfg.diurnal_period_hours
            )
            mean = cfg.base_updates_per_tick * wave
            # Dither the fractional part instead of rounding: a 0.25×
            # night still updates *sometimes*, and the long-run rate is
            # exactly the wave (seeded, so still replayable).
            updates = int(mean) + (1 if rng.random() < (mean - int(mean)) else 0)
            burst = tick in burst_ticks
            queries = cfg.flash_crowd_queries if burst else cfg.base_queries_per_tick
            plan.append(
                TickLoad(
                    tick=tick,
                    at_ms=tick * cfg.tick_ms,
                    updates=updates,
                    queries=queries,
                    flash_crowd=burst,
                    region_rename=tick in rename_ticks,
                )
            )
        return plan

    @staticmethod
    def _windows(rng: random.Random, n: int, count: int, length: int) -> set:
        """Ticks covered by *count* non-anchored burst windows."""
        covered: set = set()
        if count <= 0 or n <= 0:
            return covered
        for start in rng.sample(range(n), min(count, n)):
            covered.update(range(start, min(n, start + length)))
        return covered

    # ------------------------------------------------------------------
    @property
    def total_updates(self) -> int:
        return sum(t.updates for t in self.ticks)

    @property
    def total_queries(self) -> int:
        return sum(t.queries for t in self.ticks)

    @property
    def horizon_ms(self) -> float:
        return self.config.ticks * self.config.tick_ms


class RegionRenamer:
    """Executes the re-org waves: one division block re-numbered per wave.

    Each wave picks a division (round-robin over the directory's
    division numbers, offset by the seed so different soaks hit
    different regions first) and replaces every member employee's
    ``departmentNumber``/``divisionNumber`` with a freshly minted block
    — dozens of correlated modifies landing in one tick, the worst-case
    churn for department-filter replicas.
    """

    def __init__(
        self,
        directory: EnterpriseDirectory,
        master: DirectoryServer,
        seed: int = 0,
    ):
        self.master = master
        self.suffix = str(directory.suffix) if hasattr(directory, "suffix") else ORG_SUFFIX
        self._divisions = sorted(
            {d.first("divisionNumber") for d in directory.departments}
        )
        self._next = seed % max(1, len(self._divisions))
        self._wave = 0
        self.renamed_entries = 0

    def wave(self) -> int:
        """Run one re-org wave; returns the number of entries moved."""
        if not self._divisions:
            return 0
        division = self._divisions[self._next % len(self._divisions)]
        self._next += 1
        self._wave += 1
        # A brand-new division code, outside the generator's range, so
        # consecutive waves never collide.
        new_division = f"9{self._wave % 10}"
        result = self.master.search(
            SearchRequest(
                self.suffix, Scope.SUB, f"(divisionNumber={division})"
            )
        )
        moved = 0
        for entry in result.entries:
            if "person" not in entry.get("objectClass"):
                continue  # department entries keep their identity
            old_dept = entry.first("departmentNumber") or f"{division}00"
            new_dept = f"{new_division}{old_dept[-2:]}"
            self.master.modify(
                entry.dn,
                [
                    Modification.replace("departmentNumber", new_dept),
                    Modification.replace("divisionNumber", new_division),
                ],
            )
            moved += 1
        self.renamed_entries += moved
        return moved
