#!/usr/bin/env python3
"""§3.3 walkthrough: partial replication of a flat carrier namespace.

A telco directory keeps every subscriber directly under one container
entry.  Subtree replication has nothing to grab below the container —
it is all or nothing — while filter replication selects just the hot
MSISDN exchange prefixes.

Run:  python examples/carrier_flat_namespace.py
"""

import random

from repro.core import FilterReplica, SubtreeReplica
from repro.ldap import Scope, SearchRequest
from repro.server import DirectoryServer, SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import CarrierConfig, generate_carrier_directory
from repro.workload.distributions import ZipfSampler


def main() -> None:
    directory = generate_carrier_directory(CarrierConfig(subscribers=3000))
    master = DirectoryServer("master")
    master.add_naming_context(directory.suffix)
    master.load(directory.entries)
    print(
        f"carrier DIT: {len(directory.subscribers)} subscribers, ALL direct "
        f"children of {directory.container_dn}"
    )
    print(f"exchange prefixes allocated: {len(directory.prefixes)}")

    # A Zipf-skewed MSISDN lookup workload: some exchanges are hot.
    rng = random.Random(4)
    by_prefix = {}
    for sub in directory.subscribers:
        by_prefix.setdefault(sub.first("telephoneNumber")[:6], []).append(sub)
    sampler = ZipfSampler(sorted(by_prefix), exponent=1.0, rng=rng)
    queries = []
    for _ in range(2000):
        sub = rng.choice(by_prefix[sampler.sample()])
        queries.append(
            SearchRequest(
                "", Scope.SUB, f"(telephoneNumber={sub.first('telephoneNumber')})"
            )
        )
    train, evaluate = queries[:1000], queries[1000:]

    # Filter replica: replicate the 5 hottest exchanges.
    provider = ResyncProvider(master)
    counts = {}
    for query in train:
        prefix = str(query.filter)[len("(telephoneNumber=") : -1][:6]
        counts[prefix] = counts.get(prefix, 0) + 1
    hot = sorted(counts, key=counts.get, reverse=True)[:5]

    replica = FilterReplica("edge", network=SimulatedNetwork())
    for prefix in hot:
        replica.add_filter(
            SearchRequest("", Scope.SUB, f"(telephoneNumber={prefix}*)"), provider
        )
    hits = sum(1 for q in evaluate if replica.answer(q).is_hit)
    frac = replica.entry_count() / len(directory.subscribers)
    print(
        f"\nfilter replica: 5 exchange filters -> {replica.entry_count()} "
        f"subscribers ({frac:.0%} of the container), hit ratio "
        f"{hits / len(evaluate):.2f}"
    )

    # Subtree replica: the only subtree below the suffix worth holding
    # is the container itself — all or nothing.
    subtree = SubtreeReplica("edge-subtree", network=SimulatedNetwork())
    subtree.add_context(directory.container_dn)
    subtree.sync(provider)
    print(
        f"subtree replica: must hold the whole container — "
        f"{subtree.entry_count()} entries (100%) for hit ratio 1.00"
    )
    print(
        "\n§3.3: \"Filter based replication can be used to selectively "
        "replicate entries from a flat namespace.\""
    )


if __name__ == "__main__":
    main()
