"""Deterministic fault injection: plans, fault kinds, crash windows.

Every fault kind of :mod:`repro.server.faults` is exercised in
isolation with probability 1, asserting both the transport-level effect
(the raised :class:`TransportError` subclass or the shape of the
deliveries) and the ``net.fault.*`` accounting.  Determinism is the
load-bearing property — two plans with the same seed must produce
byte-identical schedules — because the CI fault matrix replays fixed
seeds.
"""

import pytest

from repro.ldap import Entry, ReSyncControl, Scope, SearchRequest, SyncMode
from repro.server import (
    DirectoryServer,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
    RequestDropped,
    ResponseDropped,
    ResponseTruncated,
    ServerUnavailable,
    connect,
)
from repro.sync import ResyncProvider, SyncProtocolError, SyncedContent

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")


def person(name: str) -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": "42"},
    )


def build_master(n: int = 4) -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(n):
        master.add(person(f"E{i}"))
    return master


def poll_control(content: SyncedContent) -> ReSyncControl:
    return ReSyncControl(mode=SyncMode.POLL, cookie=content.cookie)


class TestFaultSpec:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_request=1.5)
        with pytest.raises(ValueError):
            FaultSpec(crash=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(crash_length=0)

    def test_uniform_scales_crash_down(self):
        spec = FaultSpec.uniform(0.4)
        assert spec.drop_request == 0.4
        assert spec.crash == 0.1
        assert spec.cookie_invalidate == 0.1

    def test_uniform_overrides(self):
        spec = FaultSpec.uniform(0.4, crash=0.0, max_delay_ms=50.0)
        assert spec.crash == 0.0
        assert spec.max_delay_ms == 50.0


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        spec = FaultSpec.uniform(0.3)
        a = FaultPlan(spec, seed=42)
        b = FaultPlan(spec, seed=42)
        assert [a.next_exchange() for _ in range(50)] == [
            b.next_exchange() for _ in range(50)
        ]
        assert [a.next_notification() for _ in range(50)] == [
            b.next_notification() for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        spec = FaultSpec.uniform(0.3)
        a = [FaultPlan(spec, seed=1).next_exchange() for _ in range(20)]
        b = [FaultPlan(spec, seed=2).next_exchange() for _ in range(20)]
        assert a != b

    def test_streams_independent(self):
        # Drawing notifications between exchanges must not shift the
        # exchange schedule (decision i depends on (seed, i) alone).
        spec = FaultSpec.uniform(0.3)
        plain = FaultPlan(spec, seed=7)
        interleaved = FaultPlan(spec, seed=7)
        expected = [plain.next_exchange() for _ in range(10)]
        got = []
        for _ in range(10):
            interleaved.next_notification()
            got.append(interleaved.next_exchange())
        assert got == expected


def faulty(spec: FaultSpec, seed: int = 0) -> FaultyNetwork:
    return FaultyNetwork(FaultPlan(spec, seed=seed))


class TestFaultKinds:
    def test_drop_request_charges_and_records(self):
        net = faulty(FaultSpec(drop_request=1.0))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(RequestDropped):
            content.poll(provider)
        assert net.fault_counts() == {"drop_request": 1}
        assert net.stats.round_trips == 1  # the attempt still cost a trip
        assert provider.active_session_count == 0  # server never saw it

    def test_drop_response_after_server_processed(self):
        net = faulty(FaultSpec(drop_response=1.0))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ResponseDropped):
            content.poll(provider)
        # The poll executed at the master: a session exists even though
        # the consumer saw nothing.
        assert provider.active_session_count == 1
        assert net.fault_counts() == {"drop_response": 1}

    def test_duplicate_delivers_twice(self):
        net = faulty(FaultSpec(duplicate=1.0))
        provider = ResyncProvider(build_master(n=3))
        content = SyncedContent(REQUEST, network=net)
        content.poll(provider)
        assert content.matches_master(provider.server)
        assert content.updates_applied == 6  # 3 entries applied twice
        assert net.fault_counts() == {"duplicate": 1}

    def test_delay_is_carried_on_delivery(self):
        net = faulty(FaultSpec(delay=1.0, max_delay_ms=500.0))
        provider = ResyncProvider(build_master())
        deliveries = net.sync_exchange(
            provider, REQUEST, ReSyncControl(mode=SyncMode.POLL, cookie=None)
        )
        assert len(deliveries) == 1
        assert 0.0 < deliveries[0].delay_ms <= 500.0
        assert net.fault_counts() == {"delay": 1}

    def test_truncate_carries_cookieless_prefix(self):
        net = faulty(FaultSpec(truncate=1.0))
        provider = ResyncProvider(build_master(n=4))
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ResponseTruncated) as excinfo:
            content.poll(provider)
        partial = excinfo.value.partial
        assert partial is not None
        assert partial.cookie is None  # the cookie travels last
        assert len(partial.updates) < 4  # a proper prefix
        assert net.fault_counts() == {"truncate": 1}

    def test_cookie_invalidate_forces_reload_path(self):
        net = faulty(FaultSpec())  # first poll clean
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST, network=net)
        content.poll(provider)
        net.plan = FaultPlan(FaultSpec(cookie_invalidate=1.0), seed=0)
        with pytest.raises(SyncProtocolError):
            content.poll(provider)
        assert net.fault_counts() == {"cookie_invalidate": 1}
        # §5 recovery: a reload converges (fresh sessions are unaffected
        # because invalidation only applies to presented cookies).
        content.reload(provider)
        assert content.matches_master(master)


class TestCrashWindows:
    def test_crash_loses_sessions_and_opens_window(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork()  # plan-less: perfect
        content = SyncedContent(REQUEST, network=net)
        content.poll(provider)
        assert provider.active_session_count == 1

        net.plan = FaultPlan(FaultSpec(crash=1.0, crash_length=2), seed=0)
        epoch_before = net.crash_epoch
        with pytest.raises(ServerUnavailable):
            content.poll(provider)  # crash + first unavailable attempt
        assert net.crash_epoch == epoch_before + 1
        assert provider.active_session_count == 0  # session state died

        net.plan = None  # no further faults; the window still runs
        with pytest.raises(ServerUnavailable):
            content.poll(provider)  # second (last) unavailable attempt
        # Server is back up, but it forgot the cookie: §5's reload path.
        with pytest.raises(SyncProtocolError):
            content.poll(provider)
        content.reload(provider)
        assert content.matches_master(master)
        counts = net.fault_counts()
        assert counts["crash"] == 1
        assert counts["unavailable"] == 2

    def test_crash_drops_registered_connections(self):
        net = FaultyNetwork()
        server = build_master()
        net.register(server)
        provider = ResyncProvider(server)
        conn = connect(net, server.url)
        assert net.open_connections == 1

        net.plan = FaultPlan(FaultSpec(crash=1.0, crash_length=1), seed=0)
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ServerUnavailable):
            content.poll(provider)
        assert net.open_connections == 0  # forced drop, not a leak
        conn.drop()  # idempotent: a second close must not go negative
        assert net.open_connections == 0

    def test_unavailability_charges_round_trips(self):
        net = faulty(FaultSpec(crash=1.0, crash_length=3))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ServerUnavailable):
            content.poll(provider)
        assert net.stats.round_trips == 1  # the timed-out attempt cost one


class TestHealAndCounts:
    def test_heal_restores_perfect_network(self):
        net = faulty(FaultSpec(drop_response=1.0))
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ResponseDropped):
            content.poll(provider)
        net.heal()
        content.poll(provider)
        assert content.matches_master(master)

    def test_heal_ends_crash_window(self):
        net = faulty(FaultSpec(crash=1.0, crash_length=10))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ServerUnavailable):
            content.poll(provider)
        net.heal()
        content.poll(provider)  # no residual window

    def test_fault_counts_aggregate_by_kind(self):
        net = faulty(FaultSpec(drop_request=1.0))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        for _ in range(3):
            with pytest.raises(RequestDropped):
                content.poll(provider)
        assert net.fault_counts() == {"drop_request": 3}
        assert net.registry.counter("net.fault.injected").value == 3


class TestNotificationFaults:
    def test_dropped_and_duplicated_notifications(self):
        master = build_master(n=2)
        provider = ResyncProvider(master)
        net = FaultyNetwork()  # subscribe cleanly
        content = SyncedContent(REQUEST, network=net)
        deliveries, handle = net.persist_exchange(
            provider, REQUEST, content.apply_notification
        )
        content.apply(deliveries[-1].response)
        assert content.matches_master(master)

        # Every notification dropped: the replica silently diverges —
        # exactly why persist consumers need periodic refreshes.
        net.plan = FaultPlan(FaultSpec(notification_drop=1.0), seed=0)
        master.add(person("E9"))
        assert not content.matches_master(master)
        assert net.fault_counts() == {"notification_drop": 1}

        # Every notification duplicated: harmless (idempotent apply).
        net.plan = FaultPlan(FaultSpec(notification_duplicate=1.0), seed=0)
        master.add(person("E10"))
        assert "cn=E10,o=xyz" in {str(dn) for dn in content.dns()}
        assert net.fault_counts()["notification_duplicate"] == 1
        handle.abandon()
