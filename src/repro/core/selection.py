"""Dynamic filter selection (§6.2).

The replica adapts to the access pattern by periodically revising its
stored filter set.  The paper simplifies the evolution/revolution
scheme of Kapitskaia, Ng & Srivastava [12]: instead of updating the
stored list on every query (*evolutions* — "not suitable for a
replication scenario"), the replica

1. maintains **hit statistics for candidate filters** — for each user
   query, every generalized candidate that would have answered it gets
   a benefit tick (stored filters tick their own counters on real hits);
2. every ``revolution_interval`` queries performs a **revolution**: the
   stored and candidate lists are combined and the filters with the
   best **benefit/size** ratios are greedily chosen under the replica's
   entry budget (benefit = hits since the last revolution, size =
   estimated number of entries matching the filter).

Installing a newly selected filter costs an initial content transfer —
the second component of filter-replica update traffic in §7.3, visible
in Figure 7 and controlled by the revolution interval R.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ldap.query import SearchRequest
from ..obs.tracing import span
from .filter_replica import FilterReplica
from .generalization import Generalizer

__all__ = ["CandidateStats", "SelectionReport", "FilterSelector"]

SizeEstimator = Callable[[SearchRequest], int]


@dataclass
class CandidateStats:
    """Benefit/size bookkeeping for one candidate filter."""

    request: SearchRequest
    hits: int = 0
    size: Optional[int] = None

    def ratio(self) -> float:
        """Benefit-to-size ratio (size clamped to ≥1)."""
        size = self.size if self.size else 1
        return self.hits / max(size, 1)


@dataclass
class SelectionReport:
    """Outcome of one revolution."""

    installed: List[SearchRequest] = field(default_factory=list)
    removed: List[SearchRequest] = field(default_factory=list)
    kept: List[SearchRequest] = field(default_factory=list)
    budget_used: int = 0


class FilterSelector:
    """Periodic benefit/size filter selection for a :class:`FilterReplica`.

    Args:
        replica: the filter replica whose stored set is managed.
        generalizer: produces candidate generalized queries per user query.
        size_estimator: estimated entry count of a filter (typically a
            master-side count; the paper uses estimates).
        budget_entries: replica size budget, in entries.
        revolution_interval: the paper's R — queries between revolutions.
        provider: sync provider used to fetch newly installed filters
            (None = install empty; useful in unit tests).
        min_benefit: candidates below this hit count are ignored (noise
            floor).
    """

    def __init__(
        self,
        replica: FilterReplica,
        generalizer: Generalizer,
        size_estimator: SizeEstimator,
        budget_entries: int,
        revolution_interval: int = 10_000,
        provider=None,
        min_benefit: int = 1,
    ):
        if revolution_interval <= 0:
            raise ValueError("revolution_interval must be positive")
        self.replica = replica
        self.generalizer = generalizer
        self.size_estimator = size_estimator
        self.budget_entries = budget_entries
        self.revolution_interval = revolution_interval
        self.provider = provider
        self.min_benefit = min_benefit
        self._candidates: Dict[SearchRequest, CandidateStats] = {}
        self._since_revolution = 0
        self.revolutions = 0
        self.last_report: Optional[SelectionReport] = None
        # Traffic attributable to revolutions — §7.3's second update-
        # traffic component, measured by snapshotting the replica's
        # network counters around filter installs.
        self.revolution_entry_pdus = 0
        self.revolution_bytes = 0

    # ------------------------------------------------------------------
    # per-query observation
    # ------------------------------------------------------------------
    def observe(self, request: SearchRequest) -> None:
        """Record one user query; triggers a revolution when due.

        Every generalized candidate that would answer *request* gets a
        benefit tick.  (Stored filters count their own hits when the
        replica answers — see :class:`StoredFilter`.)
        """
        for candidate in self.generalizer.generalize(request):
            if self.replica.holds(candidate):
                continue  # already stored; its own hit counter applies
            stats = self._candidates.get(candidate)
            if stats is None:
                stats = CandidateStats(candidate)
                self._candidates[candidate] = stats
            stats.hits += 1
        self._since_revolution += 1
        if self._since_revolution >= self.revolution_interval:
            self.revolution()

    # ------------------------------------------------------------------
    # revolutions
    # ------------------------------------------------------------------
    def revolution(self) -> SelectionReport:
        """Combine stored + candidate lists, keep the best benefit/size.

        Greedy selection by descending ratio under ``budget_entries``;
        newly selected filters are fetched through the provider, dropped
        ones are discarded (their sync sessions ended).  All hit
        counters reset — benefit is always "since the last update".

        Observability: traced as ``core.selection.revolution``; counted
        on the replica network's registry as ``core.selection.revolutions``
        (docs/OBSERVABILITY.md §3).
        """
        with span("core.selection.revolution") as sp:
            report = self._revolution()
            sp.add("installed", len(report.installed))
            sp.add("removed", len(report.removed))
        network = self.replica.network
        if network is not None:
            network.registry.counter("core.selection.revolutions").inc()
            network.registry.gauge("core.selection.stored_filters").set(
                len(self.replica.stored_filters())
            )
        return report

    def _revolution(self) -> SelectionReport:
        pool: List[CandidateStats] = []
        stored_now = {s.request: s for s in self.replica.stored_filters()}
        for request, stored in stored_now.items():
            pool.append(
                CandidateStats(request=request, hits=stored.hits, size=len(stored.content))
            )
        for request, stats in self._candidates.items():
            if stats.hits >= self.min_benefit:
                if stats.size is None:
                    stats.size = max(self.size_estimator(request), 1)
                pool.append(stats)

        pool.sort(key=lambda c: (c.ratio(), c.hits), reverse=True)
        chosen: List[SearchRequest] = []
        used = 0
        for candidate in pool:
            size = max(candidate.size or 1, 1)
            if candidate.hits < self.min_benefit:
                continue
            if used + size > self.budget_entries:
                continue
            chosen.append(candidate.request)
            used += size

        report = SelectionReport(budget_used=used)
        network = self.replica.network
        before = network.stats.snapshot() if network is not None else None
        chosen_set = set(chosen)
        for request in list(stored_now):
            if request not in chosen_set:
                self.replica.remove_filter(request, provider=self.provider)
                report.removed.append(request)
            else:
                report.kept.append(request)
        for request in chosen:
            if request not in stored_now:
                self.replica.add_filter(request, provider=self.provider)
                report.installed.append(request)
        if before is not None:
            delta = network.stats - before
            self.revolution_entry_pdus += delta.sync_entry_pdus
            self.revolution_bytes += delta.bytes_sent

        # Reset benefit counters: next interval starts fresh.
        for stored in self.replica.stored_filters():
            stored.hits = 0
        self._candidates.clear()
        self._since_revolution = 0
        self.revolutions += 1
        self.last_report = report
        return report

    @property
    def candidate_count(self) -> int:
        return len(self._candidates)
