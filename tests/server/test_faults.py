"""Deterministic fault injection: plans, fault kinds, crash windows.

Every fault kind of :mod:`repro.server.faults` is exercised in
isolation with probability 1, asserting both the transport-level effect
(the raised :class:`TransportError` subclass or the shape of the
deliveries) and the ``net.fault.*`` accounting.  Determinism is the
load-bearing property — two plans with the same seed must produce
byte-identical schedules — because the CI fault matrix replays fixed
seeds.
"""

from dataclasses import replace

import pytest

from repro.ldap import Entry, ReSyncControl, Scope, SearchRequest, SyncMode
from repro.server import (
    DirectoryServer,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
    NetworkPartitioned,
    RequestDropped,
    ResponseDropped,
    ResponseTruncated,
    ServerUnavailable,
    TransportError,
    connect,
)
from repro.sync import (
    ResilientConsumer,
    ResyncProvider,
    SyncProtocolError,
    SyncedContent,
)

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")


def person(name: str) -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": "42"},
    )


def build_master(n: int = 4) -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(n):
        master.add(person(f"E{i}"))
    return master


def poll_control(content: SyncedContent) -> ReSyncControl:
    return ReSyncControl(mode=SyncMode.POLL, cookie=content.cookie)


class TestFaultSpec:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_request=1.5)
        with pytest.raises(ValueError):
            FaultSpec(crash=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(crash_length=0)

    def test_uniform_scales_crash_down(self):
        spec = FaultSpec.uniform(0.4)
        assert spec.drop_request == 0.4
        assert spec.crash == 0.1
        assert spec.cookie_invalidate == 0.1

    def test_uniform_overrides(self):
        spec = FaultSpec.uniform(0.4, crash=0.0, max_delay_ms=50.0)
        assert spec.crash == 0.0
        assert spec.max_delay_ms == 50.0


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        spec = FaultSpec.uniform(0.3)
        a = FaultPlan(spec, seed=42)
        b = FaultPlan(spec, seed=42)
        assert [a.next_exchange() for _ in range(50)] == [
            b.next_exchange() for _ in range(50)
        ]
        assert [a.next_notification() for _ in range(50)] == [
            b.next_notification() for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        spec = FaultSpec.uniform(0.3)
        a = [FaultPlan(spec, seed=1).next_exchange() for _ in range(20)]
        b = [FaultPlan(spec, seed=2).next_exchange() for _ in range(20)]
        assert a != b

    def test_streams_independent(self):
        # Drawing notifications between exchanges must not shift the
        # exchange schedule (decision i depends on (seed, i) alone).
        spec = FaultSpec.uniform(0.3)
        plain = FaultPlan(spec, seed=7)
        interleaved = FaultPlan(spec, seed=7)
        expected = [plain.next_exchange() for _ in range(10)]
        got = []
        for _ in range(10):
            interleaved.next_notification()
            got.append(interleaved.next_exchange())
        assert got == expected


def faulty(spec: FaultSpec, seed: int = 0) -> FaultyNetwork:
    return FaultyNetwork(FaultPlan(spec, seed=seed))


class TestFaultKinds:
    def test_drop_request_charges_and_records(self):
        net = faulty(FaultSpec(drop_request=1.0))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(RequestDropped):
            content.poll(provider)
        assert net.fault_counts() == {"drop_request": 1}
        assert net.stats.round_trips == 1  # the attempt still cost a trip
        assert provider.active_session_count == 0  # server never saw it

    def test_drop_response_after_server_processed(self):
        net = faulty(FaultSpec(drop_response=1.0))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ResponseDropped):
            content.poll(provider)
        # The poll executed at the master: a session exists even though
        # the consumer saw nothing.
        assert provider.active_session_count == 1
        assert net.fault_counts() == {"drop_response": 1}

    def test_duplicate_delivers_twice(self):
        net = faulty(FaultSpec(duplicate=1.0))
        provider = ResyncProvider(build_master(n=3))
        content = SyncedContent(REQUEST, network=net)
        content.poll(provider)
        assert content.matches_master(provider.server)
        assert content.updates_applied == 6  # 3 entries applied twice
        assert net.fault_counts() == {"duplicate": 1}

    def test_delay_is_carried_on_delivery(self):
        net = faulty(FaultSpec(delay=1.0, max_delay_ms=500.0))
        provider = ResyncProvider(build_master())
        deliveries = net.sync_exchange(
            provider, REQUEST, ReSyncControl(mode=SyncMode.POLL, cookie=None)
        )
        assert len(deliveries) == 1
        assert 0.0 < deliveries[0].delay_ms <= 500.0
        assert net.fault_counts() == {"delay": 1}

    def test_truncate_carries_cookieless_prefix(self):
        net = faulty(FaultSpec(truncate=1.0))
        provider = ResyncProvider(build_master(n=4))
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ResponseTruncated) as excinfo:
            content.poll(provider)
        partial = excinfo.value.partial
        assert partial is not None
        assert partial.cookie is None  # the cookie travels last
        assert len(partial.updates) < 4  # a proper prefix
        assert net.fault_counts() == {"truncate": 1}

    def test_cookie_invalidate_forces_reload_path(self):
        net = faulty(FaultSpec())  # first poll clean
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST, network=net)
        content.poll(provider)
        net.plan = FaultPlan(FaultSpec(cookie_invalidate=1.0), seed=0)
        with pytest.raises(SyncProtocolError):
            content.poll(provider)
        assert net.fault_counts() == {"cookie_invalidate": 1}
        # §5 recovery: a reload converges (fresh sessions are unaffected
        # because invalidation only applies to presented cookies).
        content.reload(provider)
        assert content.matches_master(master)


class TestCrashWindows:
    def test_crash_loses_sessions_and_opens_window(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork()  # plan-less: perfect
        content = SyncedContent(REQUEST, network=net)
        content.poll(provider)
        assert provider.active_session_count == 1

        net.plan = FaultPlan(FaultSpec(crash=1.0, crash_length=2), seed=0)
        epoch_before = net.crash_epoch
        with pytest.raises(ServerUnavailable):
            content.poll(provider)  # crash + first unavailable attempt
        assert net.crash_epoch == epoch_before + 1
        assert provider.active_session_count == 0  # session state died

        net.plan = None  # no further faults; the window still runs
        with pytest.raises(ServerUnavailable):
            content.poll(provider)  # second (last) unavailable attempt
        # Server is back up, but it forgot the cookie: §5's reload path.
        with pytest.raises(SyncProtocolError):
            content.poll(provider)
        content.reload(provider)
        assert content.matches_master(master)
        counts = net.fault_counts()
        assert counts["crash"] == 1
        assert counts["unavailable"] == 2

    def test_crash_drops_registered_connections(self):
        net = FaultyNetwork()
        server = build_master()
        net.register(server)
        provider = ResyncProvider(server)
        conn = connect(net, server.url)
        assert net.open_connections == 1

        net.plan = FaultPlan(FaultSpec(crash=1.0, crash_length=1), seed=0)
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ServerUnavailable):
            content.poll(provider)
        assert net.open_connections == 0  # forced drop, not a leak
        conn.drop()  # idempotent: a second close must not go negative
        assert net.open_connections == 0

    def test_unavailability_charges_round_trips(self):
        net = faulty(FaultSpec(crash=1.0, crash_length=3))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ServerUnavailable):
            content.poll(provider)
        assert net.stats.round_trips == 1  # the timed-out attempt cost one


class TestHealAndCounts:
    def test_heal_restores_perfect_network(self):
        net = faulty(FaultSpec(drop_response=1.0))
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ResponseDropped):
            content.poll(provider)
        net.heal()
        content.poll(provider)
        assert content.matches_master(master)

    def test_heal_ends_crash_window(self):
        net = faulty(FaultSpec(crash=1.0, crash_length=10))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(ServerUnavailable):
            content.poll(provider)
        net.heal()
        content.poll(provider)  # no residual window

    def test_fault_counts_aggregate_by_kind(self):
        net = faulty(FaultSpec(drop_request=1.0))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        for _ in range(3):
            with pytest.raises(RequestDropped):
                content.poll(provider)
        assert net.fault_counts() == {"drop_request": 3}
        assert net.registry.counter("net.fault.injected").value == 3


class TestNotificationFaults:
    def test_dropped_and_duplicated_notifications(self):
        master = build_master(n=2)
        provider = ResyncProvider(master)
        net = FaultyNetwork()  # subscribe cleanly
        content = SyncedContent(REQUEST, network=net)
        deliveries, handle = net.persist_exchange(
            provider, REQUEST, content.apply_notification
        )
        content.apply(deliveries[-1].response)
        assert content.matches_master(master)

        # Every notification dropped: the replica silently diverges —
        # exactly why persist consumers need periodic refreshes.
        net.plan = FaultPlan(FaultSpec(notification_drop=1.0), seed=0)
        master.add(person("E9"))
        assert not content.matches_master(master)
        assert net.fault_counts() == {"notification_drop": 1}

        # Every notification duplicated: harmless (idempotent apply).
        net.plan = FaultPlan(FaultSpec(notification_duplicate=1.0), seed=0)
        master.add(person("E10"))
        assert "cn=E10,o=xyz" in {str(dn) for dn in content.dns()}
        assert net.fault_counts()["notification_duplicate"] == 1
        handle.abandon()


class TestReachabilityFaults:
    def test_explicit_partition_heals_with_session_intact(self):
        net = FaultyNetwork()
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST, network=net)
        content.poll(provider)
        epoch = net.crash_epoch
        net.partition(provider)
        assert net.is_partitioned(provider)
        with pytest.raises(NetworkPartitioned):
            content.poll(provider)
        # The attempt still cost a round trip (request sent, timeout
        # waited out) and was recorded under the partition kind.
        assert net.fault_counts() == {"partition": 1}
        assert net.stats.round_trips == 2
        net.heal_partition(provider)
        assert not net.is_partitioned(provider)
        # Unlike a crash, the server's session state survived: the same
        # cookie resumes and crash_epoch never bumped.
        master.add(person("E9"))
        content.poll(provider)
        assert net.crash_epoch == epoch
        assert "cn=E9,o=xyz" in {str(dn) for dn in content.dns()}
        assert provider.active_session_count == 1

    def test_plan_driven_partition_window_self_heals(self):
        net = faulty(FaultSpec(partition=1.0, partition_length=2))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        for _ in range(2):
            with pytest.raises(NetworkPartitioned):
                content.poll(provider)
        # The cut lasted partition_length attempts; with the plan
        # swapped idle the window has expired and service resumes.
        net.plan = FaultPlan(FaultSpec(), seed=0)
        content.poll(provider)
        assert net.fault_counts() == {"partition": 2}
        assert len(content) == 4

    def test_slow_node_inflates_elapsed_and_records(self):
        net = FaultyNetwork()
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        content.poll(provider)
        base = net.elapsed_ms
        net.set_slow(provider, 40.0)
        content.poll(provider)
        assert net.elapsed_ms >= base + 40.0
        assert net.fault_counts() == {"slow": 1}
        net.clear_slow(provider)
        content.poll(provider)
        assert net.fault_counts() == {"slow": 1}  # surcharge gone

    def test_plan_driven_slow_adds_transient_latency(self):
        net = faulty(FaultSpec(slow=1.0, slow_latency_ms=25.0))
        provider = ResyncProvider(build_master())
        content = SyncedContent(REQUEST, network=net)
        content.poll(provider)
        counts = net.fault_counts()
        assert counts.get("slow") == 1
        assert net.elapsed_ms > 0


class TestStreamIndependence:
    """Satellite regression: enabling one seed stream must never shift
    another stream's draw sequence (each decision *i* of stream *s* is
    ``Random(f"{seed}:{s}{i}")``, keyed by index alone)."""

    def test_unrelated_draws_do_not_shift_exchange_stream(self):
        spec = FaultSpec.uniform(0.3)
        plain = FaultPlan(spec, seed=9)
        expected = [plain.next_exchange() for _ in range(10)]
        noisy = FaultPlan(spec, seed=9)
        got = []
        for _ in range(10):
            noisy.next_batch()
            noisy.next_journal()
            noisy.next_reconcile()
            noisy.next_snapshot()
            noisy.next_partition()
            got.append(noisy.next_exchange())
        assert got == expected

    @staticmethod
    def _drive(spec: FaultSpec, cycles: int = 12):
        """A fixed mutate+poll loop; returns the observable trace."""
        net = faulty(spec, seed=5)
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST, network=net)
        for i in range(cycles):
            master.add(person(f"X{i}"))
            try:
                content.poll(provider)
            except TransportError:
                pass
        return {
            "faults": net.fault_counts(),
            "round_trips": net.stats.round_trips,
            "elapsed_ms": net.elapsed_ms,
            "dns": sorted(str(dn) for dn in content.dns()),
        }

    def test_enabling_unrelated_streams_keeps_fault_trace_identical(self):
        # A plain poll loop never flushes persist batches, never crashes
        # a journaled provider, never reconciles and never reads a
        # snapshot — so cranking those streams to 0.9 must leave the
        # exchange-stream trace byte-identical.
        base = FaultSpec(
            drop_request=0.35,
            drop_response=0.25,
            truncate=0.3,
            duplicate=0.25,
            delay=0.3,
            max_delay_ms=20.0,
        )
        loud = replace(
            base,
            batch_drop=0.9,
            batch_truncate=0.9,
            journal_truncate=0.9,
            journal_corrupt=0.9,
            sketch_corrupt=0.9,
            snapshot_truncate=0.9,
            snapshot_corrupt=0.9,
            snapshot_stale=0.9,
        )
        assert self._drive(base) == self._drive(loud)

    def test_partition_stream_gating_leaves_exchange_trace_identical(self):
        # Enabling the :p stream with a zero-latency slow fault draws
        # reachability decisions every exchange but changes nothing
        # observable — the :x stream must not shift.
        base = FaultSpec(
            drop_request=0.35,
            drop_response=0.25,
            truncate=0.3,
            duplicate=0.25,
            delay=0.3,
            max_delay_ms=20.0,
        )
        gated = replace(base, slow=1.0, slow_latency_ms=0.0)
        assert self._drive(base) == self._drive(gated)

    def test_salt_rng_does_not_perturb_backoff_jitter(self):
        # Regression: the reconcile salt draws from its own RNG; one
        # consumer reconciling must not shift its backoff jitter
        # sequence relative to an identical consumer that never did.
        provider = ResyncProvider(build_master())
        a = ResilientConsumer(REQUEST, provider, seed=3, name="a")
        b = ResilientConsumer(REQUEST, provider, seed=3, name="b")
        for _ in range(5):
            a._salt_rng.getrandbits(32)
        assert [a._rng.random() for _ in range(10)] == [
            b._rng.random() for _ in range(10)
        ]
