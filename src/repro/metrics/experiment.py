"""Experiment harness: drive a trace against a replica and a master.

Encapsulates the evaluation loop every bench shares (§7):

1. the replica tries to answer each trace query; hits/misses are
   recorded (hit-ratio = fraction completely answered);
2. misses are forwarded to the master, and the answer optionally feeds
   the replica's recent-query cache;
3. a :class:`~repro.core.selection.FilterSelector`, when present,
   observes every query and performs its periodic revolutions;
4. an :class:`~repro.workload.updates.UpdateGenerator`, when present,
   mutates the master at a configured rate, and the replica polls its
   sync provider every ``sync_interval`` queries — producing the update
   traffic the Figure 6/7 benches read off the network counters.

The result snapshot separates the two filter-replica traffic components
of §7.3: steady-state resync traffic vs revolution (new-filter) traffic.

Traffic is measured as the difference of two
:meth:`~repro.server.network.TrafficStats.snapshot` frames around the
run.  ``TrafficStats`` fields are registry-backed aliases of the
``net.traffic.*`` counters (the facade contract of
docs/OBSERVABILITY.md §3), so the same numbers are also available from
``network.registry`` — the driver itself stays agnostic of which window
a caller reads.  The sync mechanics the traffic reflects are specified
in docs/PROTOCOL.md; the containment work each ``answer()`` performs is
docs/ALGORITHMS.md §1–§3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from ..core.filter_replica import FilterReplica
from ..core.replica import AnswerStatus
from ..core.selection import FilterSelector
from ..core.subtree_replica import SubtreeReplica
from ..ldap.query import SearchRequest
from ..server.directory import DirectoryServer
from ..server.network import SimulatedNetwork
from ..workload.trace import Trace
from ..workload.updates import UpdateGenerator

__all__ = ["ExperimentResult", "ReplicaDriver"]

Replica = Union[FilterReplica, SubtreeReplica]


@dataclass
class ExperimentResult:
    """Everything a bench needs to print one row of a table/figure."""

    queries: int = 0
    hits: int = 0
    partials: int = 0
    misses: int = 0
    replica_entries: int = 0
    replica_bytes: int = 0
    stored_filters: int = 0
    updates_applied: int = 0
    sync_polls: int = 0
    # Update traffic (entries transferred to keep the replica in sync).
    sync_entry_pdus: int = 0
    sync_dn_pdus: int = 0
    sync_bytes: int = 0
    # The revolution component of the traffic (§7.3, Figure 7).
    revolution_entry_pdus: int = 0
    revolution_bytes: int = 0
    containment_checks: int = 0
    hit_ratio_by_type: Dict[str, float] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    @property
    def resync_entry_pdus(self) -> int:
        """Steady-state sync traffic, excluding revolution fetches."""
        return self.sync_entry_pdus - self.revolution_entry_pdus


class ReplicaDriver:
    """Runs one experiment: trace × replica × master (+updates, +sync).

    Args:
        master: the master server answering misses and feeding sync.
        replica: a filter or subtree replica.
        provider: sync provider polled every *sync_interval* queries
            (None = replica content is static for the run).
        selector: dynamic filter selection (filter replicas only).
        update_generator: master mutation source.
        updates_per_query: average master updates applied per query
            (fractional rates accumulate).
        sync_interval: queries between replica sync polls.
        use_scoped: answer the scoped (subtree-friendly) query variants
            instead of the root-based ones.
        feed_cache: insert master answers for missed queries into the
            replica's recent-query cache (filter replicas only).
        network: network whose counters the result reads (defaults to
            the replica's network).
    """

    def __init__(
        self,
        master: DirectoryServer,
        replica: Replica,
        provider=None,
        selector: Optional[FilterSelector] = None,
        update_generator: Optional[UpdateGenerator] = None,
        updates_per_query: float = 0.0,
        sync_interval: int = 500,
        use_scoped: bool = False,
        feed_cache: bool = True,
        network: Optional[SimulatedNetwork] = None,
    ):
        self.master = master
        self.replica = replica
        self.provider = provider
        self.selector = selector
        self.update_generator = update_generator
        self.updates_per_query = updates_per_query
        self.sync_interval = sync_interval
        self.use_scoped = use_scoped
        self.feed_cache = feed_cache
        self.network = network if network is not None else replica.network

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ExperimentResult:
        """Drive the whole trace; returns the aggregated result.

        The traffic fields of the result are interval deltas: a
        ``TrafficStats`` snapshot is taken before the first query and
        subtracted from the live stats after the final sync, so only
        traffic caused by *this* run is attributed to it (the network —
        and its backing metrics registry — may be shared across runs).
        """
        result = ExperimentResult()
        baseline = self.network.stats.snapshot() if self.network else None
        selector_rev_pdus0 = (
            self.selector.revolution_entry_pdus if self.selector else 0
        )
        selector_rev_bytes0 = (
            self.selector.revolution_bytes if self.selector else 0
        )
        by_type_totals: Dict[str, int] = {}
        by_type_hits: Dict[str, int] = {}
        update_debt = 0.0

        for index, record in enumerate(trace):
            request = record.scoped_request if self.use_scoped else record.request
            answer = self.replica.answer(request)
            result.queries += 1
            qtype = record.qtype.value
            by_type_totals[qtype] = by_type_totals.get(qtype, 0) + 1
            if answer.status is AnswerStatus.HIT:
                result.hits += 1
                by_type_hits[qtype] = by_type_hits.get(qtype, 0) + 1
            elif answer.status is AnswerStatus.PARTIAL:
                result.partials += 1
            else:
                result.misses += 1
                self._handle_miss(request)

            if self.selector is not None:
                self.selector.observe(request)

            if self.update_generator is not None and self.updates_per_query > 0:
                update_debt += self.updates_per_query
                whole = int(update_debt)
                if whole:
                    result.updates_applied += self.update_generator.apply(whole)
                    update_debt -= whole

            if (
                self.provider is not None
                and self.sync_interval > 0
                and (index + 1) % self.sync_interval == 0
            ):
                self.replica.sync(self.provider)
                result.sync_polls += 1

        # Final sync so the measured traffic covers every update.
        if self.provider is not None:
            self.replica.sync(self.provider)
            result.sync_polls += 1

        result.replica_entries = self.replica.entry_count()
        result.replica_bytes = self.replica.size_bytes()
        if isinstance(self.replica, FilterReplica):
            result.stored_filters = self.replica.filter_count
            result.containment_checks = self.replica.containment_checks
        if baseline is not None:
            delta = self.network.stats - baseline
            result.sync_entry_pdus = delta.sync_entry_pdus
            result.sync_dn_pdus = delta.sync_dn_pdus
            result.sync_bytes = delta.bytes_sent
        if self.selector is not None:
            result.revolution_entry_pdus = (
                self.selector.revolution_entry_pdus - selector_rev_pdus0
            )
            result.revolution_bytes = (
                self.selector.revolution_bytes - selector_rev_bytes0
            )
        result.hit_ratio_by_type = {
            qtype: by_type_hits.get(qtype, 0) / total
            for qtype, total in by_type_totals.items()
        }
        return result

    # ------------------------------------------------------------------
    def _handle_miss(self, request: SearchRequest) -> None:
        """Answer a missed query at the master; maybe feed the cache."""
        response = self.master.search(request)
        if (
            self.feed_cache
            and isinstance(self.replica, FilterReplica)
            and self.replica.cache.capacity > 0
        ):
            self.replica.observe_miss(request, response.entries)

    # ------------------------------------------------------------------
    @staticmethod
    def size_estimator_for(master: DirectoryServer) -> Callable[[SearchRequest], int]:
        """A master-side size estimator for :class:`FilterSelector`."""

        def estimate(request: SearchRequest) -> int:
            return len(master.search(request).entries)

        return estimate
