"""Subtree based replication — the baseline model (§3, §3.4.1).

A subtree replica holds one or more *replication contexts*: subtrees of
entries, each with meta information ``Ci = (Si, Ri1 … RiCi)`` — the
context suffix and the DNs of referral objects marking subordinate
contexts held elsewhere.

Answerability is the paper's ``isContained`` algorithm: a query can be
answered when its base lies inside some context's subtree and not below
any of that context's referral objects.  Even then the answer may be
*partial* — a referral object inside the search region generates a
continuation reference (§3.1.3), which forfeits the hit.

Content is kept consistent by synchronizing each context as the query
``(base=Si, scope=SUBTREE, filter=(objectclass=*))`` through any of the
providers in :mod:`repro.sync` — a subtree is just a special case of a
filter (§3: "a query specification can be reduced to a subtree
specification").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.filters import MATCH_ALL
from ..ldap.matching import matches
from ..ldap.query import Scope, SearchRequest
from ..server.network import SimulatedNetwork
from ..server.operations import Referral
from ..sync.consumer import SyncedContent
from .replica import AnswerStatus, HitStats, ReplicaAnswer

__all__ = ["ReplicationContext", "SubtreeReplica"]


@dataclass(frozen=True)
class ReplicationContext:
    """Meta information of one replicated subtree: ``(S, R1 … Rn)``."""

    suffix: DN
    referrals: Tuple[Tuple[DN, str], ...] = ()
    """(referral object DN, subordinate server URL) pairs."""

    def referral_dns(self) -> Tuple[DN, ...]:
        return tuple(dn for dn, _url in self.referrals)


class SubtreeReplica:
    """A partial replica whose unit of replication is a subtree.

    Args:
        name: replica name (for diagnostics and referral URLs).
        master_url: where misses are referred.
        network: optional traffic accounting.
    """

    def __init__(
        self,
        name: str,
        master_url: str = "ldap://master",
        network: Optional[SimulatedNetwork] = None,
    ):
        self.name = name
        self.master_url = master_url
        self.network = network
        self._contexts: List[ReplicationContext] = []
        self._contents: Dict[DN, SyncedContent] = {}
        self.stats = HitStats()

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def add_context(
        self,
        suffix: Union[DN, str],
        referrals: Sequence[Tuple[Union[DN, str], str]] = (),
    ) -> ReplicationContext:
        """Configure a replication context rooted at *suffix*.

        *referrals* lists (DN, URL) pairs of subordinate contexts the
        replica does not hold.
        """
        suffix_dn = suffix if isinstance(suffix, DN) else DN.parse(suffix)
        pairs = tuple(
            (dn if isinstance(dn, DN) else DN.parse(dn), url)
            for dn, url in referrals
        )
        context = ReplicationContext(suffix_dn, pairs)
        self._contexts.append(context)
        request = SearchRequest(suffix_dn, Scope.SUB, MATCH_ALL)
        self._contents[suffix_dn] = SyncedContent(request, network=self.network)
        return context

    @property
    def contexts(self) -> Tuple[ReplicationContext, ...]:
        return tuple(self._contexts)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def sync(self, provider) -> None:
        """Poll *provider* once per context (initial poll loads content)."""
        for content in self._contents.values():
            content.poll(provider)

    def load_directly(self, suffix: Union[DN, str], entries: Sequence[Entry]) -> None:
        """Install content without a provider (for tests/benches that
        size replicas explicitly)."""
        suffix_dn = suffix if isinstance(suffix, DN) else DN.parse(suffix)
        content = self._contents[suffix_dn]
        content.entries = {e.dn: e.copy() for e in entries}

    # ------------------------------------------------------------------
    # the paper's isContained algorithm (§3.4.1)
    # ------------------------------------------------------------------
    def is_contained(self, base: DN) -> bool:
        """True when a query based at *base* can be (at least partially)
        answered: transcription of ``isContained(b, C)``."""
        for context in self._contexts:
            if context.suffix == base:
                return True
            if not context.suffix.is_suffix_of(base):
                continue
            if any(r.is_ancestor_or_self(base) for r in context.referral_dns()):
                return False
            return True
        return False

    def _context_for(self, base: DN) -> Optional[ReplicationContext]:
        for context in self._contexts:
            if context.suffix.is_ancestor_or_self(base):
                if any(
                    r.is_ancestor_or_self(base) for r in context.referral_dns()
                ):
                    return None
                return context
        return None

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def answer(self, request: SearchRequest) -> ReplicaAnswer:
        """Answer *request* from local content, or refer to the master.

        A referral object inside the search region makes the answer
        PARTIAL (the query "does not contribute to hit-ratio", §3.1.3).
        """
        context = self._context_for(request.base)
        if context is None:
            answer = ReplicaAnswer(
                AnswerStatus.MISS,
                referrals=[Referral(self.master_url, request.base)],
            )
            self.stats.record(answer)
            return answer

        content = self._contents[context.suffix]
        if request.base not in content.entries and request.base != context.suffix:
            # Base entry absent locally (e.g. replica loaded a subset).
            answer = ReplicaAnswer(
                AnswerStatus.MISS,
                referrals=[Referral(self.master_url, request.base)],
            )
            self.stats.record(answer)
            return answer

        entries: List[Entry] = []
        referrals: List[Referral] = []
        for dn, entry in content.entries.items():
            if not request.in_scope(dn):
                continue
            if matches(request.filter, entry):
                entries.append(request.project(entry))
        for referral_dn, url in context.referrals:
            if request.in_scope(referral_dn):
                referrals.append(Referral(url, referral_dn))

        status = AnswerStatus.PARTIAL if referrals else AnswerStatus.HIT
        answer = ReplicaAnswer(
            status,
            entries=entries,
            referrals=referrals,
            answered_by=str(context.suffix),
        )
        self.stats.record(answer)
        return answer

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Unique entries held (the paper's replica-size metric)."""
        dns: Set[DN] = set()
        for content in self._contents.values():
            dns.update(content.entries)
        return len(dns)

    def size_bytes(self) -> int:
        """Approximate stored bytes across contexts."""
        seen: Set[DN] = set()
        total = 0
        for content in self._contents.values():
            for dn, entry in content.entries.items():
                if dn not in seen:
                    seen.add(dn)
                    total += entry.estimated_size()
        return total

    def __repr__(self) -> str:
        return (
            f"SubtreeReplica({self.name!r}, {len(self._contexts)} contexts, "
            f"{self.entry_count()} entries)"
        )
