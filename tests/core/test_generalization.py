"""Tests for filter generalization rules (§6.1)."""


from repro.core import (
    Generalizer,
    HierarchyGeneralization,
    PrefixGeneralization,
    PrefixSuffixGeneralization,
    SuffixGeneralization,
)
from repro.ldap import Scope, SearchRequest


def q(filter_text: str) -> SearchRequest:
    return SearchRequest("", Scope.SUB, filter_text)


class TestPrefixGeneralization:
    def test_telephone_example(self):
        """Paper §6.1: (telephoneNumber=261-758…) → (telephoneNumber=261-758*)."""
        rule = PrefixGeneralization("telephoneNumber", 7)
        out = rule.generalize(q("(telephoneNumber=261-758-4132)"))
        assert str(out.filter) == "(telephoneNumber=261-758*)"

    def test_short_value_skipped(self):
        rule = PrefixGeneralization("telephoneNumber", 7)
        assert rule.generalize(q("(telephoneNumber=261)")) is None

    def test_other_attribute_skipped(self):
        rule = PrefixGeneralization("telephoneNumber", 7)
        assert rule.generalize(q("(mail=x@y.z)")) is None

    def test_non_equality_skipped(self):
        rule = PrefixGeneralization("telephoneNumber", 7)
        assert rule.generalize(q("(telephoneNumber=261*)")) is None

    def test_preserves_base_scope_attrs(self):
        rule = PrefixGeneralization("sn", 2)
        src = SearchRequest("c=us,o=xyz", Scope.ONE, "(sn=Smith)", ["cn"])
        out = rule.generalize(src)
        assert out.base == src.base
        assert out.scope == src.scope
        assert out.attributes == src.attributes


class TestPrefixSuffixGeneralization:
    def test_serial_number_shape(self):
        """The (serialnumber=_*_) generalized filters of §7.2(a)."""
        rule = PrefixSuffixGeneralization("serialNumber", 4, 2)
        out = rule.generalize(q("(serialNumber=004217IN)"))
        assert str(out.filter) == "(serialNumber=0042*IN)"

    def test_value_too_short(self):
        rule = PrefixSuffixGeneralization("serialNumber", 4, 2)
        assert rule.generalize(q("(serialNumber=0042IN)")) is None

    def test_query_contained_in_generalization(self):
        from repro.core import query_contained_in

        rule = PrefixSuffixGeneralization("serialNumber", 4, 2)
        src = q("(serialNumber=004217IN)")
        out = rule.generalize(src)
        assert query_contained_in(src, out)


class TestSuffixGeneralization:
    def test_mail_domain(self):
        rule = SuffixGeneralization("mail")
        out = rule.generalize(q("(mail=john@us.xyz.com)"))
        assert str(out.filter) == "(mail=*@us.xyz.com)"

    def test_no_separator_skipped(self):
        rule = SuffixGeneralization("mail")
        assert rule.generalize(q("(mail=john.doe)")) is None

    def test_empty_domain_skipped(self):
        rule = SuffixGeneralization("mail")
        assert rule.generalize(q("(mail=john@)")) is None

    def test_custom_separator(self):
        rule = SuffixGeneralization("cn", separator="-")
        out = rule.generalize(q("(cn=alpha-beta)"))
        assert str(out.filter) == "(cn=*-beta)"


class TestHierarchyGeneralization:
    RULE = HierarchyGeneralization("divisionNumber", "departmentNumber")

    def test_paper_example(self):
        """(&(div=X)(dept=Y)) → (&(div=X)(dept=_)) as presence."""
        out = self.RULE.generalize(
            q("(&(divisionNumber=24)(departmentNumber=2406))")
        )
        assert str(out.filter) == "(&(divisionNumber=24)(departmentNumber=*))"

    def test_contains_the_original(self):
        from repro.core import query_contained_in

        src = q("(&(departmentNumber=2406)(divisionNumber=24))")
        out = self.RULE.generalize(src)
        assert query_contained_in(src, out)

    def test_missing_keep_attr_skipped(self):
        assert self.RULE.generalize(q("(departmentNumber=2406)")) is None
        assert (
            self.RULE.generalize(q("(&(departmentNumber=2406)(l=site1))")) is None
        )

    def test_missing_wildcard_attr_skipped(self):
        assert self.RULE.generalize(q("(&(divisionNumber=24)(l=site1))")) is None

    def test_non_conjunction_skipped(self):
        assert self.RULE.generalize(q("(divisionNumber=24)")) is None


class TestGeneralizer:
    def test_applies_all_rules(self):
        gen = Generalizer(
            [
                PrefixSuffixGeneralization("serialNumber", 4, 2),
                PrefixGeneralization("serialNumber", 4),
            ]
        )
        out = gen.generalize(q("(serialNumber=004217IN)"))
        assert [str(c.filter) for c in out] == [
            "(serialNumber=0042*IN)",
            "(serialNumber=0042*)",
        ]

    def test_deduplicates(self):
        gen = Generalizer(
            [PrefixGeneralization("sn", 2), PrefixGeneralization("sn", 2)]
        )
        assert len(gen.generalize(q("(sn=Smith)"))) == 1

    def test_inapplicable_rules_skipped(self):
        gen = Generalizer([SuffixGeneralization("mail")])
        assert gen.generalize(q("(sn=Smith)")) == []

    def test_add_rule(self):
        gen = Generalizer()
        gen.add_rule(PrefixGeneralization("sn", 2))
        assert len(gen.rules) == 1
        assert gen.generalize(q("(sn=Smith)"))


# ----------------------------------------------------------------------
# property: every applicable rule produces a CONTAINING query
# ----------------------------------------------------------------------
from hypothesis import given, strategies as st

from repro.core import IdentityGeneralization, query_contained_in

_serials = st.builds(
    lambda block, seq, cc: f"{block:04d}{seq:02d}{cc}",
    st.integers(min_value=0, max_value=9999),
    st.integers(min_value=0, max_value=99),
    st.sampled_from(["IN", "US", "DE"]),
)
_mails = st.builds(
    lambda user, cc: f"{user}@{cc}.xyz.com",
    st.text(alphabet="abcdefgh", min_size=1, max_size=8),
    st.sampled_from(["in", "us", "de"]),
)
_phones = st.builds(
    lambda a, b, c: f"{a:03d}-{b:03d}-{c:04d}",
    st.integers(min_value=200, max_value=999),
    st.integers(min_value=100, max_value=999),
    st.integers(min_value=1000, max_value=9999),
)


class TestGeneralizationSoundness:
    @given(_serials)
    def test_prefix_suffix_contains_original(self, serial):
        rule = PrefixSuffixGeneralization("serialNumber", 4, 2)
        src = q(f"(serialNumber={serial})")
        out = rule.generalize(src)
        assert out is not None
        assert query_contained_in(src, out)

    @given(_mails)
    def test_suffix_contains_original(self, mail):
        rule = SuffixGeneralization("mail")
        src = q(f"(mail={mail})")
        out = rule.generalize(src)
        assert out is not None
        assert query_contained_in(src, out)

    @given(_phones)
    def test_prefix_contains_original(self, phone):
        rule = PrefixGeneralization("telephoneNumber", 7)
        src = q(f"(telephoneNumber={phone})")
        out = rule.generalize(src)
        assert out is not None
        assert query_contained_in(src, out)

    @given(st.integers(min_value=0, max_value=99))
    def test_hierarchy_contains_original(self, n):
        rule = HierarchyGeneralization("divisionNumber", "departmentNumber")
        src = q(f"(&(divisionNumber=24)(departmentNumber=24{n:02d}))")
        out = rule.generalize(src)
        assert out is not None
        assert query_contained_in(src, out)

    def test_identity_trivially_contains(self):
        rule = IdentityGeneralization()
        src = q("(cn=x)")
        assert query_contained_in(src, rule.generalize(src))
