"""Tests for LDAP templates and the template registry (§3.4.2)."""

import pytest

from repro.core import Template, TemplateRegistry, template_key
from repro.ldap import parse_filter


class TestTemplateMatching:
    def test_simple_wildcard(self):
        t = Template.parse("(uid=_)")
        assert t.matches(parse_filter("(uid=jdoe)"))
        assert not t.matches(parse_filter("(cn=jdoe)"))
        assert not t.matches(parse_filter("(uid=jdoe*)"))

    def test_fixed_value_template(self):
        """Paper example: (&(cn=_)(ou=research)) fixes the ou value."""
        t = Template.parse("(&(cn=_)(ou=research))")
        assert t.matches(parse_filter("(&(cn=John)(ou=research))"))
        assert t.matches(parse_filter("(&(ou=research)(cn=John))"))  # order-free
        assert not t.matches(parse_filter("(&(cn=John)(ou=sales))"))

    def test_multi_wildcard(self):
        t = Template.parse("(&(sn=_)(givenName=_))")
        assert t.matches(parse_filter("(&(sn=Doe)(givenName=John))"))
        assert not t.matches(parse_filter("(sn=Doe)"))
        assert not t.matches(parse_filter("(&(sn=Doe)(givenName=John)(uid=x))"))

    def test_substring_shape(self):
        t = Template.parse("(sn=_*)")
        assert t.matches(parse_filter("(sn=smi*)"))
        assert not t.matches(parse_filter("(sn=*smi)"))
        assert not t.matches(parse_filter("(sn=smi)"))

    def test_prefix_suffix_shape(self):
        t = Template.parse("(serialnumber=_*_)")
        assert t.matches(parse_filter("(serialNumber=0042*IN)"))
        assert not t.matches(parse_filter("(serialNumber=0042*)"))

    def test_presence_pattern(self):
        t = Template.parse("(&(divisionNumber=_)(departmentNumber=*))")
        assert t.matches(parse_filter("(&(divisionNumber=20)(departmentNumber=*))"))
        assert not t.matches(
            parse_filter("(&(divisionNumber=20)(departmentNumber=2406))")
        )

    def test_not_pattern(self):
        t = Template.parse("(!(uid=_))")
        assert t.matches(parse_filter("(!(uid=x))"))
        assert not t.matches(parse_filter("(uid=x)"))

    def test_key_is_fully_blanked(self):
        t = Template.parse("(&(cn=_)(ou=research))")
        assert t.key == "(&(cn=_)(ou=_))"

    def test_template_key_function(self):
        assert template_key(parse_filter("(serialNumber=0042*IN)")) == "(serialnumber=_*_)"


class TestRegistry:
    @pytest.fixture()
    def registry(self) -> TemplateRegistry:
        return TemplateRegistry.from_strings(
            "(serialnumber=_)",
            "(serialnumber=_*_)",
            "(mail=_)",
            "(&(departmentnumber=_)(divisionnumber=_))",
            "(&(divisionnumber=_)(departmentnumber=*))",
        )

    def test_classify_members(self, registry):
        assert registry.classify(parse_filter("(serialNumber=004217IN)")) is not None
        assert registry.classify(parse_filter("(mail=a@b.c)")) is not None
        assert (
            registry.classify(
                parse_filter("(&(departmentNumber=2406)(divisionNumber=20))")
            )
            is not None
        )

    def test_classify_nonmembers(self, registry):
        assert registry.classify(parse_filter("(cn=John)")) is None
        assert registry.classify(parse_filter("(telephoneNumber=123)")) is None

    def test_may_answer_same_template(self, registry):
        assert registry.may_answer("(serialnumber=_)", "(serialnumber=_)")

    def test_may_answer_substring_over_equality(self, registry):
        assert registry.may_answer("(serialnumber=_*_)", "(serialnumber=_)")

    def test_may_not_answer_equality_over_substring(self, registry):
        assert not registry.may_answer("(serialnumber=_)", "(serialnumber=_*_)")

    def test_may_not_answer_across_attributes(self, registry):
        assert not registry.may_answer("(mail=_)", "(serialnumber=_)")

    def test_paper_example_conjunction_cannot_answer_single(self, registry):
        """§3.4.2: (&(sn=_)(ou=_)) cannot answer (sn=_)."""
        reg = TemplateRegistry.from_strings("(&(sn=_)(ou=_))", "(sn=_)")
        assert not reg.may_answer("(&(ou=_)(sn=_))", "(sn=_)")
        assert reg.may_answer("(sn=_)", "(sn=_)")

    def test_hierarchy_template_answers_pair_query(self, registry):
        """(&(div=X)(dept=*)) may answer (&(dept=Y)(div=X))."""
        assert registry.may_answer(
            "(&(departmentnumber=*)(divisionnumber=_))",
            "(&(departmentnumber=_)(divisionnumber=_))",
        )

    def test_unknown_keys_default_true(self, registry):
        assert registry.may_answer("(nonsense=_)", "(serialnumber=_)")

    def test_len(self, registry):
        assert len(registry) == 5
