"""Edge cases of the experiment driver."""

import pytest

from repro.core import FilterReplica
from repro.metrics import ExperimentResult, ReplicaDriver
from repro.server import DirectoryServer, SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import Trace, WorkloadConfig, WorkloadGenerator
from repro.workload.updates import UpdateGenerator


@pytest.fixture()
def setup(small_directory):
    master = DirectoryServer("master")
    master.add_naming_context(small_directory.suffix)
    master.load(small_directory.entries)
    provider = ResyncProvider(master)
    trace = WorkloadGenerator(small_directory, WorkloadConfig(seed=31)).generate(100)
    return small_directory, master, provider, trace


class TestDriverEdges:
    def test_empty_trace(self, setup):
        _dir, master, provider, _trace = setup
        replica = FilterReplica("r", network=SimulatedNetwork())
        result = ReplicaDriver(master, replica, provider=provider).run(Trace())
        assert result.queries == 0
        assert result.hit_ratio == 0.0
        assert result.hit_ratio_by_type == {}

    def test_no_provider_no_sync(self, setup):
        _dir, master, _provider, trace = setup
        replica = FilterReplica("r", network=SimulatedNetwork())
        result = ReplicaDriver(master, replica, provider=None).run(trace)
        assert result.sync_polls == 0

    def test_sync_interval_zero_only_final_sync(self, setup):
        _dir, master, provider, trace = setup
        replica = FilterReplica("r", network=SimulatedNetwork())
        result = ReplicaDriver(
            master, replica, provider=provider, sync_interval=0
        ).run(trace)
        assert result.sync_polls == 1  # the final safety sync only

    def test_fractional_update_rate_accumulates(self, setup):
        directory, master, provider, trace = setup
        replica = FilterReplica("r", network=SimulatedNetwork())
        result = ReplicaDriver(
            master,
            replica,
            provider=provider,
            update_generator=UpdateGenerator(directory, master),
            updates_per_query=0.25,
        ).run(trace)
        # 100 queries × 0.25 → ≈25 updates (churn races may skip a few)
        assert 20 <= result.updates_applied <= 25

    def test_no_network_still_counts_hits(self, setup):
        _dir, master, provider, trace = setup
        replica = FilterReplica("r")  # no network attached
        result = ReplicaDriver(
            master, replica, provider=provider, network=None
        ).run(trace)
        assert result.queries == len(trace)
        assert result.sync_bytes == 0  # nothing measured without a network

    def test_result_resync_property(self):
        result = ExperimentResult(sync_entry_pdus=10, revolution_entry_pdus=4)
        assert result.resync_entry_pdus == 6
