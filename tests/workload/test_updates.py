"""Tests for the master update workload."""

import pytest

from repro.server import DirectoryServer
from repro.workload.updates import UpdateConfig, UpdateGenerator


@pytest.fixture()
def setup(small_directory):
    master = DirectoryServer("master")
    master.add_naming_context(small_directory.suffix)
    master.load(small_directory.entries)
    return small_directory, master


class TestApply:
    def test_updates_commit(self, setup):
        directory, master = setup
        gen = UpdateGenerator(directory, master)
        committed = gen.apply(50)
        assert committed >= 45  # occasional churn races allowed
        assert master.current_csn >= committed

    def test_deterministic_given_seed(self, setup):
        directory, master = setup
        gen = UpdateGenerator(directory, master, UpdateConfig(seed=9))
        gen.apply(20)
        csn_a = master.current_csn

        master2 = DirectoryServer("master2")
        master2.add_naming_context(directory.suffix)
        master2.load(directory.entries)
        gen2 = UpdateGenerator(directory, master2, UpdateConfig(seed=9))
        gen2.apply(20)
        assert master2.current_csn == csn_a

    def test_each_kind_occurs(self, setup):
        directory, master = setup
        from repro.server import UpdateOp

        seen = set()

        class Listener:
            def on_update(self, record):
                seen.add(record.op)

        master.add_update_listener(Listener())
        gen = UpdateGenerator(directory, master, UpdateConfig(seed=1))
        gen.apply(300)
        assert UpdateOp.ADD in seen
        assert UpdateOp.MODIFY in seen
        assert UpdateOp.DELETE in seen
        assert UpdateOp.MODIFY_DN in seen

    def test_hires_get_valid_parents(self, setup):
        directory, master = setup
        gen = UpdateGenerator(
            directory,
            master,
            UpdateConfig(hire=1.0, benign_modify=0, department_change=0, leave=0, rename=0, department_entry_modify=0),
        )
        assert gen.apply(10) == 10

    def test_leaves_remove_employees(self, setup):
        directory, master = setup
        before = len(master.store)
        gen = UpdateGenerator(
            directory,
            master,
            UpdateConfig(leave=1.0, benign_modify=0, department_change=0, hire=0, rename=0, department_entry_modify=0),
        )
        gen.apply(10)
        assert len(master.store) == before - 10

    def test_renames_keep_subtree_consistent(self, setup):
        directory, master = setup
        gen = UpdateGenerator(
            directory,
            master,
            UpdateConfig(rename=1.0, benign_modify=0, department_change=0, hire=0, leave=0, department_entry_modify=0),
        )
        committed = gen.apply(5)
        assert committed == 5
        # internal employee list still names live entries
        assert gen.apply(5) == 5
