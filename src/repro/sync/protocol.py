"""Wire-level types of the ReSync protocol (§5.2).

A synchronization exchange is: the client (replica) attaches a
``reSyncControl = (mode, cookie)`` to a normal search request; the
server answers with a stream of update PDUs — each an entry (or bare
DN) plus a control specifying the action — followed by a cookie to
resume the session (poll mode).

:class:`SyncUpdate` is one update PDU; :class:`SyncResponse` is the
whole poll answer.  Traffic accounting rule (used by the experiments):
``add``/``modify`` PDUs carry the complete entry, ``delete``/``retain``
PDUs carry only the DN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ldap.controls import SyncAction
from ..ldap.dn import DN
from ..ldap.entry import Entry

__all__ = ["SyncUpdate", "SyncResponse", "SyncProtocolError"]


class SyncProtocolError(Exception):
    """Protocol violation: unknown cookie, bad mode transition, etc."""


@dataclass(frozen=True)
class SyncUpdate:
    """One update/notification PDU.

    ``entry`` is present exactly when the action carries a full entry
    (add / modify); delete and retain carry only the DN.
    """

    action: SyncAction
    dn: DN
    entry: Optional[Entry] = None

    def __post_init__(self):
        carries_entry = self.action in (SyncAction.ADD, SyncAction.MODIFY)
        if carries_entry and self.entry is None:
            raise SyncProtocolError(f"{self.action.value} PDU requires an entry")
        if not carries_entry and self.entry is not None:
            raise SyncProtocolError(f"{self.action.value} PDU must not carry an entry")

    @property
    def pdu_bytes(self) -> int:
        """Approximate wire size of this PDU.

        Uses the entry's modelled size (the ``entrySizeBytes`` stamp
        emulating the paper's ~6KB employee entries).  For the *actual*
        BER-encoded size of the simulated entry, use
        :meth:`measured_bytes`.
        """
        if self.entry is not None:
            return self.entry.estimated_size()
        return len(str(self.dn)) or 8

    def measured_bytes(self) -> int:
        """Exact RFC 2251 BER wire size of this PDU's payload."""
        from ..ldap import ber

        if self.entry is not None:
            return ber.encoded_entry_size(self.entry)
        return ber.encoded_dn_size(self.dn)

    @classmethod
    def add(cls, entry: Entry) -> "SyncUpdate":
        return cls(SyncAction.ADD, entry.dn, entry.copy())

    @classmethod
    def modify(cls, entry: Entry) -> "SyncUpdate":
        return cls(SyncAction.MODIFY, entry.dn, entry.copy())

    @classmethod
    def delete(cls, dn: DN) -> "SyncUpdate":
        return cls(SyncAction.DELETE, dn)

    @classmethod
    def retain(cls, dn: DN) -> "SyncUpdate":
        return cls(SyncAction.RETAIN, dn)


@dataclass
class SyncResponse:
    """The server's answer to one synchronization request.

    Attributes:
        updates: the update PDUs, in application order.
        cookie: cookie to resume the session (poll mode); None after a
            ``sync_end`` or for persist deliveries.
        initial: True when this response carried the entire content
            (cookie was null — the first request of a session).
        uses_retain: True when the response follows the
            incomplete-history scheme of eq. (3): anything not retained,
            added or modified must be discarded by the replica.
    """

    updates: List[SyncUpdate] = field(default_factory=list)
    cookie: Optional[str] = None
    initial: bool = False
    uses_retain: bool = False

    @property
    def entry_pdus(self) -> int:
        """PDUs carrying full entries (add/modify)."""
        return sum(1 for u in self.updates if u.entry is not None)

    @property
    def dn_pdus(self) -> int:
        """DN-only PDUs (delete/retain)."""
        return sum(1 for u in self.updates if u.entry is None)

    @property
    def total_bytes(self) -> int:
        """Approximate wire size of all update PDUs."""
        return sum(u.pdu_bytes for u in self.updates)
