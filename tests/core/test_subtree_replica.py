"""Tests for the subtree replication baseline (§3.4.1)."""

import pytest

from repro.core import AnswerStatus, SubtreeReplica
from repro.ldap import DN, Entry, Scope, SearchRequest
from repro.server import DirectoryServer
from repro.sync import ResyncProvider


def person(dn: str, **attrs) -> Entry:
    base = {"objectClass": ["person", "top"], "sn": "T"}
    base["cn"] = dn.split(",")[0].split("=")[1]
    base.update(attrs)
    return Entry(dn, base)


@pytest.fixture()
def master() -> DirectoryServer:
    m = DirectoryServer("master")
    m.add_naming_context("o=xyz")
    m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for cc in ("us", "in"):
        m.add(Entry(f"c={cc},o=xyz", {"objectClass": ["country"], "c": cc}))
    m.add(person("cn=Alice,c=us,o=xyz", departmentNumber="42"))
    m.add(person("cn=Bob,c=us,o=xyz"))
    m.add(person("cn=Chandra,c=in,o=xyz"))
    return m


@pytest.fixture()
def replica(master) -> SubtreeReplica:
    r = SubtreeReplica("branch")
    r.add_context("c=us,o=xyz")
    r.sync(ResyncProvider(master))
    return r


class TestIsContained:
    """Transcription checks of the paper's isContained algorithm."""

    def test_base_equals_suffix(self, replica):
        assert replica.is_contained(DN.parse("c=us,o=xyz"))

    def test_base_inside_context(self, replica):
        assert replica.is_contained(DN.parse("cn=Alice,c=us,o=xyz"))

    def test_base_outside(self, replica):
        assert not replica.is_contained(DN.parse("c=in,o=xyz"))
        assert not replica.is_contained(DN.parse("o=xyz"))

    def test_base_below_referral_excluded(self):
        r = SubtreeReplica("branch")
        r.add_context(
            "c=us,o=xyz", referrals=[("ou=research,c=us,o=xyz", "ldap://hostB")]
        )
        assert not r.is_contained(DN.parse("cn=x,ou=research,c=us,o=xyz"))
        assert not r.is_contained(DN.parse("ou=research,c=us,o=xyz"))
        assert r.is_contained(DN.parse("cn=y,c=us,o=xyz"))

    def test_multiple_contexts(self):
        r = SubtreeReplica("branch")
        r.add_context("c=us,o=xyz")
        r.add_context("c=in,o=xyz")
        assert r.is_contained(DN.parse("cn=x,c=in,o=xyz"))


class TestAnswer:
    def test_hit_inside_context(self, replica):
        answer = replica.answer(SearchRequest("c=us,o=xyz", Scope.SUB, "(sn=T)"))
        assert answer.status is AnswerStatus.HIT
        assert len(answer.entries) == 2

    def test_filter_applied_locally(self, replica):
        answer = replica.answer(
            SearchRequest("c=us,o=xyz", Scope.SUB, "(departmentNumber=42)")
        )
        assert [e.first("cn") for e in answer.entries] == ["Alice"]

    def test_miss_outside_context(self, replica):
        answer = replica.answer(SearchRequest("c=in,o=xyz", Scope.SUB, "(sn=T)"))
        assert answer.status is AnswerStatus.MISS
        assert answer.referrals[0].url == "ldap://master"

    def test_root_based_query_always_misses(self, replica):
        """§3.1.1: null-based queries cannot be answered by subtree
        replicas."""
        answer = replica.answer(SearchRequest("", Scope.SUB, "(sn=T)"))
        assert answer.status is AnswerStatus.MISS

    def test_partial_when_referral_in_region(self, master):
        """§3.1.3: partially answered queries do not count as hits."""
        replica = SubtreeReplica("branch")
        replica.add_context(
            "c=us,o=xyz", referrals=[("ou=research,c=us,o=xyz", "ldap://hostB")]
        )
        replica.load_directly(
            "c=us,o=xyz",
            [
                person("cn=Alice,c=us,o=xyz"),
                person("cn=Bob,c=us,o=xyz"),
            ],
        )
        answer = replica.answer(SearchRequest("c=us,o=xyz", Scope.SUB, "(sn=T)"))
        assert answer.status is AnswerStatus.PARTIAL
        assert answer.referrals[0].url == "ldap://hostB"

    def test_scope_one_no_referral_is_hit(self, master):
        replica = SubtreeReplica("branch")
        replica.add_context(
            "c=us,o=xyz",
            referrals=[("cn=deep,cn=Alice,c=us,o=xyz", "ldap://hostB")],
        )
        replica.load_directly("c=us,o=xyz", [person("cn=Alice,c=us,o=xyz")])
        answer = replica.answer(SearchRequest("c=us,o=xyz", Scope.ONE, "(sn=T)"))
        assert answer.status is AnswerStatus.HIT

    def test_base_entry_missing_locally(self, master):
        replica = SubtreeReplica("branch")
        replica.add_context("c=us,o=xyz")
        replica.load_directly("c=us,o=xyz", [person("cn=Alice,c=us,o=xyz")])
        answer = replica.answer(
            SearchRequest("cn=Ghost,c=us,o=xyz", Scope.BASE, "(sn=T)")
        )
        assert answer.status is AnswerStatus.MISS

    def test_stats_recorded(self, replica):
        replica.answer(SearchRequest("c=us,o=xyz", Scope.SUB, "(sn=T)"))
        replica.answer(SearchRequest("c=in,o=xyz", Scope.SUB, "(sn=T)"))
        assert replica.stats.queries == 2
        assert replica.stats.hits == 1
        assert replica.stats.misses == 1
        assert replica.stats.hit_ratio == 0.5


class TestSyncAndSizing:
    def test_sync_loads_subtree(self, master):
        replica = SubtreeReplica("branch")
        replica.add_context("c=us,o=xyz")
        replica.sync(ResyncProvider(master))
        assert replica.entry_count() == 3  # country entry + 2 people

    def test_sync_tracks_updates(self, master):
        provider = ResyncProvider(master)
        replica = SubtreeReplica("branch")
        replica.add_context("c=us,o=xyz")
        replica.sync(provider)
        master.add(person("cn=Dawn,c=us,o=xyz"))
        master.delete("cn=Bob,c=us,o=xyz")
        replica.sync(provider)
        answer = replica.answer(SearchRequest("c=us,o=xyz", Scope.SUB, "(sn=T)"))
        assert {e.first("cn") for e in answer.entries} == {"Alice", "Dawn"}

    def test_size_bytes_counts_unique(self, replica):
        assert replica.size_bytes() > 0

    def test_overlapping_contexts_counted_once(self, master):
        replica = SubtreeReplica("branch")
        replica.add_context("c=us,o=xyz")
        replica.add_context("o=xyz")
        provider = ResyncProvider(master)
        replica.sync(provider)
        assert replica.entry_count() == 6  # all entries, not double-counted

    def test_repr(self, replica):
        assert "branch" in repr(replica)
