"""The resilient consumer: retries, backoff, reloads, degraded reads.

Fault schedules here are *scripted* (an explicit list of
:class:`ExchangeFaults`, then a perfect network) rather than drawn from
probabilities, so each test controls exactly which exchange fails and
how.  The seeded-probabilistic end-to-end runs live in
``test_fault_resilience_property.py``.
"""

import random

import pytest

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import (
    DirectoryServer,
    ExchangeFaults,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
    OperationTimeout,
    ResponseDropped,
)
from repro.sync import (
    ResilientConsumer,
    ResyncProvider,
    RetainResyncProvider,
    RetryPolicy,
    SyncedContent,
)

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")


def person(name: str) -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": "42"},
    )


def build_master(n: int = 4) -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(n):
        master.add(person(f"E{i}"))
    return master


class ScriptedPlan(FaultPlan):
    """A plan that plays back an explicit list of exchange faults, then
    behaves perfectly (empty decisions)."""

    def __init__(self, *script: ExchangeFaults, spec: FaultSpec = FaultSpec()):
        super().__init__(spec, seed=0)
        self._script = list(script)

    def next_exchange(self) -> ExchangeFaults:
        if self._script:
            return self._script.pop(0)
        return ExchangeFaults()

    def next_notification(self):
        return (False, False)


class TestDroppedResponseRegression:
    """A transient transport fault must never wipe the replica.

    Regression for the old ``resilient_poll``, whose only recovery path
    was a reload that cleared all local entries before re-fetching: a
    single dropped response emptied the replica until the next
    successful poll.
    """

    def test_single_drop_does_not_empty_replica(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan())
        content = SyncedContent(REQUEST, network=net)
        content.resilient_poll(provider)
        assert len(content) == 4

        master.delete("cn=E0,o=xyz")
        net.plan = ScriptedPlan(ExchangeFaults(drop_response=True))
        content.resilient_poll(provider)  # drop, then clean retry
        assert content.matches_master(master)
        # The retry reused the session (no reload): exactly one session,
        # and the replica was never empty in between.
        assert provider.active_session_count == 1

    def test_drop_leaves_content_untouched_until_retry(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan())
        content = SyncedContent(REQUEST, network=net)
        content.resilient_poll(provider)

        net.plan = ScriptedPlan(
            ExchangeFaults(drop_response=True),
            ExchangeFaults(drop_response=True),
            ExchangeFaults(drop_response=True),
            ExchangeFaults(drop_response=True),
        )
        with pytest.raises(ResponseDropped):
            content.resilient_poll(provider, max_attempts=4)
        # Even after exhausting every attempt the stale content stands.
        assert len(content) == 4

    def test_failed_reload_keeps_stale_content(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan())
        content = SyncedContent(REQUEST, network=net)
        content.resilient_poll(provider)

        net.plan = ScriptedPlan(ExchangeFaults(drop_response=True))
        with pytest.raises(ResponseDropped):
            content.reload(provider)
        assert len(content) == 4  # stale but serviceable

    def test_protocol_error_still_reloads(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan())
        content = SyncedContent(REQUEST, network=net)
        content.resilient_poll(provider)

        provider.invalidate_cookie(content.cookie)
        master.add(person("E9"))
        content.resilient_poll(provider)
        assert content.matches_master(master)


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(
            base_backoff_ms=10.0, backoff_factor=2.0, max_backoff_ms=50.0, jitter=0.0
        )
        rng = random.Random(0)
        waits = [policy.backoff_ms(i, rng) for i in range(5)]
        assert waits == [10.0, 20.0, 40.0, 50.0, 50.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff_ms=100.0, jitter=0.25)
        a = [policy.backoff_ms(0, random.Random("s")) for _ in range(3)]
        b = [policy.backoff_ms(0, random.Random("s")) for _ in range(3)]
        assert a == b
        assert all(75.0 <= w <= 100.0 for w in a)

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            ResilientConsumer(REQUEST, object(), mode="push")


class TestResilientPoll:
    def test_retries_accumulate_backoff_on_simulated_clock(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(
            ScriptedPlan(
                ExchangeFaults(drop_request=True), ExchangeFaults(drop_response=True)
            )
        )
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            policy=RetryPolicy(base_backoff_ms=10.0, jitter=0.0),
        )
        assert consumer.sync_once() is not None
        assert consumer.content.matches_master(master)
        assert net.elapsed_ms == 30.0  # 10 + 20, no real sleeping
        registry = net.registry
        assert registry.counter("sync.resilient.retries").value == 2
        assert (
            registry.counter("sync.resilient.retries").labels(kind="drop_request").value
            == 1
        )

    def test_timeout_treats_late_delivery_as_lost(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan(ExchangeFaults(delay_ms=5000.0)))
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            policy=RetryPolicy(timeout_ms=100.0, jitter=0.0),
        )
        assert consumer.sync_once() is not None  # timed out once, retried
        assert consumer.content.matches_master(master)
        assert (
            net.registry.counter("sync.resilient.retries").labels(kind="timeout").value
            == 1
        )

    def test_bare_timeout_raises_operation_timeout(self):
        provider = ResyncProvider(build_master())
        net = FaultyNetwork(ScriptedPlan(ExchangeFaults(delay_ms=5000.0)))
        content = SyncedContent(REQUEST, network=net)
        with pytest.raises(OperationTimeout):
            content.poll(provider, timeout_ms=100.0)

    def test_cookie_invalidation_falls_back_to_reload(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(
            ScriptedPlan(ExchangeFaults(), ExchangeFaults(cookie_invalidate=True))
        )
        consumer = ResilientConsumer(REQUEST, provider, network=net)
        consumer.sync_once()
        master.delete("cn=E1,o=xyz")
        consumer.sync_once()  # cookie invalidated -> reload, same cycle
        assert consumer.content.matches_master(master)
        assert net.registry.counter("sync.resilient.reloads").value == 1

    def test_truncated_prefix_applied_then_retried(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan())
        consumer = ResilientConsumer(
            REQUEST, provider, network=net, policy=RetryPolicy(jitter=0.0)
        )
        consumer.sync_once()

        for name in ("E0", "E1", "E2"):
            master.delete(f"cn={name},o=xyz")
        net.plan = ScriptedPlan(ExchangeFaults(truncate=True, truncate_keep=0.7))
        before = consumer.content.updates_applied
        consumer.sync_once()
        assert consumer.content.matches_master(master)
        # The safe prefix (2 of 3 deletes) was applied, then the retry
        # retransmitted the full batch: 2 + 3 update applications.
        assert consumer.content.updates_applied - before == 5

    def test_truncated_initial_response_not_partially_applied(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan(ExchangeFaults(truncate=True, truncate_keep=0.5)))
        consumer = ResilientConsumer(
            REQUEST, provider, network=net, policy=RetryPolicy(jitter=0.0)
        )
        consumer.sync_once()  # truncated initial is retried wholesale
        assert consumer.content.matches_master(master)
        assert len(consumer.content) == 4

    def test_retain_provider_truncation_retried_wholesale(self):
        master = build_master()
        provider = RetainResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan())
        consumer = ResilientConsumer(
            REQUEST, provider, network=net, policy=RetryPolicy(jitter=0.0)
        )
        consumer.sync_once()
        master.delete("cn=E3,o=xyz")
        net.plan = ScriptedPlan(ExchangeFaults(truncate=True, truncate_keep=0.5))
        consumer.sync_once()
        assert consumer.content.matches_master(master)


class TestDegradedMode:
    def unreachable_net(self):
        # Every exchange drops: the master is effectively unreachable.
        return FaultyNetwork(FaultPlan(FaultSpec(drop_response=1.0), seed=0))

    def test_enters_and_exits_degraded(self):
        master = build_master()
        provider = ResyncProvider(master)
        replica_server = build_master(n=0)
        net = self.unreachable_net()
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            replica_server=replica_server,
            policy=RetryPolicy(max_attempts=2, degraded_after=2, jitter=0.0),
        )
        assert consumer.sync_once() is None
        assert not consumer.degraded  # one failed cycle: not yet
        assert consumer.sync_once() is None
        assert consumer.degraded
        assert replica_server.degraded
        assert net.registry.gauge("sync.resilient.degraded").value == 1

        # Stale reads keep answering, stamped degraded.
        result = replica_server.search(SearchRequest("o=xyz", Scope.SUB, "(objectClass=*)"))
        assert result.degraded

        net.heal()
        assert consumer.sync_once() is not None
        assert not consumer.degraded
        assert not replica_server.degraded
        result = replica_server.search(SearchRequest("o=xyz", Scope.SUB, "(objectClass=*)"))
        assert not result.degraded

    def test_content_survives_degradation(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan())
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            policy=RetryPolicy(max_attempts=2, degraded_after=1, jitter=0.0),
        )
        consumer.sync_once()
        net.plan = FaultPlan(FaultSpec(drop_response=1.0), seed=0)
        assert consumer.sync_once() is None
        assert consumer.degraded
        assert len(consumer.content) == 4  # last synchronized content


class TestPersistResilience:
    def test_subscription_counts_one_connection(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork()
        consumer = ResilientConsumer(
            REQUEST, provider, network=net, mode="persist"
        )
        consumer.sync_once()
        assert net.open_connections == 1
        consumer.close()
        assert net.open_connections == 0

    def test_crash_recounts_connection_without_leak(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(ScriptedPlan())
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            mode="persist",
            policy=RetryPolicy(jitter=0.0),
        )
        consumer.sync_once()
        assert net.open_connections == 1

        net.plan = ScriptedPlan(spec=FaultSpec(crash_length=1))
        net.crash(provider)  # connection force-dropped, session state lost
        assert net.open_connections == 0
        master.add(person("E9"))
        consumer.sync_once()  # epoch mismatch detected -> re-subscribe
        assert consumer.content.matches_master(master)
        assert net.open_connections == 1  # re-counted, not leaked
        assert net.total_connections == 2

    def test_periodic_refresh_bounds_notification_loss(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(FaultPlan(FaultSpec(notification_drop=1.0), seed=0))
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            mode="persist",
            policy=RetryPolicy(persist_refresh_interval=2, jitter=0.0),
        )
        consumer.sync_once()
        master.add(person("E9"))  # notification dropped: silent divergence
        assert not consumer.content.matches_master(master)
        cycles = consumer.converge(master, max_cycles=4)
        assert cycles is not None  # the refresh re-fetched full content
        assert net.registry.counter("sync.resilient.refreshes").value >= 1

    def test_subscribe_failure_does_not_leak_half_open_session(self):
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork(
            ScriptedPlan(ExchangeFaults(drop_response=True))
        )
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            mode="persist",
            policy=RetryPolicy(jitter=0.0),
        )
        consumer.sync_once()  # first subscribe lost, retried
        assert consumer.content.matches_master(master)
        assert net.open_connections == 1
        assert provider.active_session_count == 1  # half-open one was reset
