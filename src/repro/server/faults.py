"""Deterministic fault injection over the simulated network.

The paper sells ReSync (§5) on *convergence*: a cookie-based session
drives a filter replica back to exact master content even when sessions
are interrupted mid-stream.  The base
:class:`~repro.server.network.SimulatedNetwork` is a perfect counting
bus, so that claim would only ever be tested on a perfect network; this
module makes the network hostile, reproducibly.

* :class:`FaultSpec` — declarative per-exchange fault probabilities
  (drops, duplication, delay, truncation, crash windows, cookie
  invalidation).
* :class:`FaultPlan` — a seeded, replayable schedule of fault
  decisions.  Decision *i* is derived from ``(seed, i)`` alone, so two
  runs with the same seed see byte-identical fault sequences no matter
  how many random values each decision consumes.
* :class:`FaultyNetwork` — a :class:`SimulatedNetwork` whose exchange
  hooks consult the plan.  Every injected fault is recorded under the
  ``net.fault.injected`` counter (plus a ``kind``-labeled child per
  fault kind) in the network's metrics registry, so benches can report
  fault counts next to round trips.

Fault semantics (docs/PROTOCOL.md §9):

==================  ====================================================
fault               effect on one synchronization exchange
==================  ====================================================
drop_request        request lost before the server saw it
                    (:class:`RequestDropped`; no server-side effect)
drop_response       server processed the poll — the session's batch was
                    drained — but the response was lost
                    (:class:`ResponseDropped`)
duplicate           the response arrives twice (two
                    :class:`~repro.server.network.Delivery` copies);
                    consumers must re-apply idempotently
delay               the response arrives late; consumers with a
                    per-operation timeout treat it as lost
truncate            the update stream is cut mid-delivery; the prefix
                    travels in :class:`ResponseTruncated`, the cookie
                    (which travels last) does not
crash               the server crashes: in-memory session state is lost
                    (``provider.restart()``), open connections drop, and
                    the server stays unreachable for ``crash_length``
                    further exchanges (:class:`ServerUnavailable`).  A
                    *durable* provider (one with a journal) additionally
                    recovers from its journal (``provider.recover()``)
                    before the restart window ends
journal_truncate    the crash tears the journal tail: a fraction of the
                    trailing records is lost before recovery replays it
journal_corrupt     the crash corrupts one journal record (or the
                    snapshot); everything from that point on is
                    unreadable and dropped by recovery
cookie_invalidate   the presented session cookie is expired server-side
                    (or corrupted in flight) — the provider answers with
                    :class:`~repro.sync.SyncProtocolError`, exercising
                    §5's reload recovery path
sketch_corrupt      one cell of a served reconcile sketch is damaged in
                    flight (:func:`repro.sync.reconcile.corrupt_cell`);
                    the consumer's verified decode detects it and
                    doubles or falls back to a rebuild — never applies
                    garbage (docs/PROTOCOL.md §11)
snapshot_truncate   the replica's crash tears the tail off its content
                    snapshot (:mod:`repro.sync.snapshot`); the restart's
                    checksum verification detects it and the snapshot is
                    discarded, never applied — a cold start
snapshot_corrupt    the replica's snapshot is bit-flipped at rest; same
                    detect-and-discard outcome as a torn one
snapshot_stale      the snapshot is intact but its cookie has aged out
                    of the provider's session table: content restores,
                    the first poll is refused, and the consumer climbs
                    the ladder (sketch reconcile, then rebuild)
partition           provider↔consumer reachability is cut: exchanges
                    raise :class:`NetworkPartitioned` until the window
                    ends (``partition_length`` exchanges, or an explicit
                    :meth:`FaultyNetwork.heal_partition`); the server is
                    healthy throughout — session state survives and
                    persist cookies resume after the heal
slow                slow-node injection: the exchange succeeds but
                    carries up to ``slow_latency_ms`` added latency,
                    charged to the virtual clock and to the delivery's
                    ``delay_ms`` (so per-operation timeouts fire)
==================  ====================================================

Partition and slow decisions ride their own ``:p`` stream, drawn only
when the spec enables them — plans without reachability faults keep
byte-identical schedules on every other stream for the same seed.
Explicit :meth:`FaultyNetwork.partition` / ``set_slow`` windows (the
chaos schedule's tool) need no plan at all.

Snapshot damage is applied at replica-restart time — the moment the
restarting consumer is about to read its snapshot — via
:meth:`FaultyNetwork.damage_snapshot`, on its own ``:s`` decision
stream so existing exchange/notification/journal schedules for a seed
stay byte-identical.

Persist-mode notification streams get their own decision stream
(``notification_drop`` / ``notification_duplicate``), applied by the
:meth:`FaultyNetwork.wrap_deliver` wrapper around the consumer's
deliver callback.

Pipelined (batched) persist streams get yet another independent
stream, ``:b``: :meth:`FaultyNetwork.deliver_batch` can drop a whole
flushed batch (``batch_drop``) or truncate it at a batch boundary
(``batch_truncate`` — the delivered prefix surfaces exactly like
:class:`ResponseTruncated.partial` does for a cut poll response).
Synchronous runs never flush batches, so for a given seed their
exchange/notification schedules stay byte-identical whether or not the
spec enables batch faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.registry import MetricsRegistry
from .network import (
    Delivery,
    NetworkPartitioned,
    RequestDropped,
    ResponseDropped,
    ResponseTruncated,
    ServerUnavailable,
    SimulatedNetwork,
)

__all__ = ["FaultSpec", "FaultPlan", "ExchangeFaults", "FaultyNetwork"]


@dataclass(frozen=True)
class FaultSpec:
    """Per-exchange fault probabilities (all in ``[0, 1]``).

    ``crash_length`` is the number of subsequent exchanges the crashed
    server stays unreachable for (the restart window).
    """

    drop_request: float = 0.0
    drop_response: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay_ms: float = 1000.0
    truncate: float = 0.0
    cookie_invalidate: float = 0.0
    crash: float = 0.0
    crash_length: int = 2
    notification_drop: float = 0.0
    notification_duplicate: float = 0.0
    batch_drop: float = 0.0
    batch_truncate: float = 0.0
    journal_truncate: float = 0.0
    journal_corrupt: float = 0.0
    sketch_corrupt: float = 0.0
    snapshot_truncate: float = 0.0
    snapshot_corrupt: float = 0.0
    snapshot_stale: float = 0.0
    partition: float = 0.0
    partition_length: int = 2
    slow: float = 0.0
    slow_latency_ms: float = 50.0

    def __post_init__(self):
        for name in (
            "drop_request",
            "drop_response",
            "duplicate",
            "delay",
            "truncate",
            "cookie_invalidate",
            "crash",
            "notification_drop",
            "notification_duplicate",
            "batch_drop",
            "batch_truncate",
            "journal_truncate",
            "journal_corrupt",
            "sketch_corrupt",
            "snapshot_truncate",
            "snapshot_corrupt",
            "snapshot_stale",
            "partition",
            "slow",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")
        if self.crash_length < 1:
            raise ValueError("crash_length must be >= 1")
        if self.partition_length < 1:
            raise ValueError("partition_length must be >= 1")
        if self.slow_latency_ms < 0:
            raise ValueError("slow_latency_ms must be >= 0")

    @classmethod
    def uniform(cls, rate: float, **overrides) -> "FaultSpec":
        """Every message-level fault at the same *rate* (the bench's
        one-knob sweep); crash/cookie faults default to ``rate / 4`` so
        a high-rate sweep is not dominated by restart windows."""
        params = dict(
            drop_request=rate,
            drop_response=rate,
            duplicate=rate,
            delay=rate,
            truncate=rate,
            cookie_invalidate=rate / 4,
            crash=rate / 4,
            notification_drop=rate,
            notification_duplicate=rate,
            # Only pipelined (batched) persist streams are affected —
            # the :b stream; synchronous runs never draw from it.
            batch_drop=rate,
            batch_truncate=rate,
            # Only durable (journaled) providers are affected; a crash
            # damages the journal at the same modest rate it happens.
            journal_truncate=rate / 4,
            journal_corrupt=rate / 4,
            # Only reconcile exchanges are affected (the :r stream).
            sketch_corrupt=rate,
            # Only snapshotting consumers are affected, at restart time
            # (the :s stream); damaged at the journal's modest rate.
            snapshot_truncate=rate / 4,
            snapshot_corrupt=rate / 4,
            snapshot_stale=rate / 4,
            # Reachability faults (partition / slow, the :p stream) stay
            # opt-in: uniform() predates them and committed fault-matrix
            # baselines depend on its historical behavior.  Enable them
            # per-run via overrides or a chaos FaultSchedule window.
        )
        params.update(overrides)
        return cls(**params)


@dataclass(frozen=True)
class ExchangeFaults:
    """The fault decisions for one synchronization exchange."""

    crash: bool = False
    cookie_invalidate: bool = False
    drop_request: bool = False
    drop_response: bool = False
    truncate: bool = False
    truncate_keep: float = 0.0
    duplicate: bool = False
    delay_ms: float = 0.0

    @property
    def any(self) -> bool:
        return (
            self.crash
            or self.cookie_invalidate
            or self.drop_request
            or self.drop_response
            or self.truncate
            or self.duplicate
            or self.delay_ms > 0
        )


class FaultPlan:
    """A seeded, replayable schedule of fault decisions.

    Exchange *i*'s decisions are drawn from ``Random(f"{seed}:x{i}")``
    and notification *j*'s from ``Random(f"{seed}:n{j}")`` — fully
    deterministic, independent of how many prior decisions were made by
    other code paths, and independent between the two streams.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        self._exchange_index = 0
        self._notification_index = 0
        self._batch_index = 0
        self._journal_index = 0
        self._reconcile_index = 0
        self._snapshot_index = 0
        self._partition_index = 0

    def next_exchange(self) -> ExchangeFaults:
        """Fault decisions for the next poll/subscribe exchange."""
        rng = random.Random(f"{self.seed}:x{self._exchange_index}")
        self._exchange_index += 1
        spec = self.spec
        delay_hit = rng.random() < spec.delay
        return ExchangeFaults(
            crash=rng.random() < spec.crash,
            cookie_invalidate=rng.random() < spec.cookie_invalidate,
            drop_request=rng.random() < spec.drop_request,
            drop_response=rng.random() < spec.drop_response,
            truncate=rng.random() < spec.truncate,
            truncate_keep=rng.random(),
            duplicate=rng.random() < spec.duplicate,
            delay_ms=rng.uniform(0.0, spec.max_delay_ms) if delay_hit else 0.0,
        )

    def next_notification(self) -> Tuple[bool, bool]:
        """(drop, duplicate) decisions for the next pushed notification."""
        rng = random.Random(f"{self.seed}:n{self._notification_index}")
        self._notification_index += 1
        return (
            rng.random() < self.spec.notification_drop,
            rng.random() < self.spec.notification_duplicate,
        )

    def next_batch(self) -> Tuple[bool, bool, float]:
        """(drop, truncate, keep position) decisions for the next
        flushed persist batch — its own ``:b`` stream, so synchronous
        runs (which never flush batches) keep byte-identical
        exchange/notification schedules for the same seed."""
        rng = random.Random(f"{self.seed}:b{self._batch_index}")
        self._batch_index += 1
        return (
            rng.random() < self.spec.batch_drop,
            rng.random() < self.spec.batch_truncate,
            rng.random(),
        )

    def next_journal(self) -> Tuple[bool, bool, float]:
        """(truncate, corrupt, position) decisions for the next crash of
        a journaled provider — its own ``:j`` stream, so providers with
        and without journals see identical exchange/notification
        schedules for the same seed."""
        rng = random.Random(f"{self.seed}:j{self._journal_index}")
        self._journal_index += 1
        return (
            rng.random() < self.spec.journal_truncate,
            rng.random() < self.spec.journal_corrupt,
            rng.random(),
        )

    def next_reconcile(self) -> Tuple[bool, float]:
        """(corrupt, cell position) decisions for the next served
        sketch — its own ``:r`` stream, so runs that never reconcile
        see identical exchange/notification/journal schedules for the
        same seed."""
        rng = random.Random(f"{self.seed}:r{self._reconcile_index}")
        self._reconcile_index += 1
        return (rng.random() < self.spec.sketch_corrupt, rng.random())

    def next_partition(self) -> Tuple[bool, bool, float]:
        """(partition, slow, added latency ms) decisions for the next
        exchange's reachability — its own ``:p`` stream, drawn only
        when the spec enables partition or slow faults, so plans
        without reachability faults keep byte-identical schedules on
        every other stream for the same seed."""
        rng = random.Random(f"{self.seed}:p{self._partition_index}")
        self._partition_index += 1
        return (
            rng.random() < self.spec.partition,
            rng.random() < self.spec.slow,
            rng.uniform(0.0, self.spec.slow_latency_ms),
        )

    def next_snapshot(self) -> Tuple[bool, bool, bool, float]:
        """(truncate, corrupt, stale, position) decisions for the next
        replica restart that reads a content snapshot — its own ``:s``
        stream, so consumers with and without snapshot stores see
        identical exchange/notification/journal/reconcile schedules for
        the same seed."""
        rng = random.Random(f"{self.seed}:s{self._snapshot_index}")
        self._snapshot_index += 1
        return (
            rng.random() < self.spec.snapshot_truncate,
            rng.random() < self.spec.snapshot_corrupt,
            rng.random() < self.spec.snapshot_stale,
            rng.random(),
        )


class FaultyNetwork(SimulatedNetwork):
    """A :class:`SimulatedNetwork` that injects faults from a
    :class:`FaultPlan` into every synchronization exchange.

    With ``plan=None`` (or after :meth:`heal`) it behaves exactly like
    the perfect base network, so the same experiment object can run a
    faulty phase followed by a clean convergence check.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        round_trip_latency_ms: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        **network_kwargs,
    ):
        super().__init__(
            round_trip_latency_ms=round_trip_latency_ms,
            registry=registry,
            **network_kwargs,
        )
        self.plan = plan
        # server key -> remaining exchanges the server stays down for.
        self._down_for: Dict[str, int] = {}
        # server key -> remaining exchanges unreachable; -1 = cut until
        # heal_partition() (the chaos schedule's explicit windows).
        self._partitioned: Dict[str, int] = {}
        # server key -> sustained added latency per exchange (slow node).
        self._slow: Dict[str, float] = {}
        self._fault_total = self.registry.counter("net.fault.injected")
        self._fault_delay_ms = self.registry.gauge("net.fault.delay_ms")

    # ------------------------------------------------------------------
    # plan control
    # ------------------------------------------------------------------
    def heal(self) -> None:
        """Stop injecting: drop the plan and end every crash window,
        partition and slow-node condition."""
        self.plan = None
        self._down_for.clear()
        self._partitioned.clear()
        self._slow.clear()

    def fault_counts(self) -> Dict[str, int]:
        """``{fault kind: injections}`` — the ``net.fault.injected``
        children, for bench reporting."""
        counts: Dict[str, int] = {}
        for instrument in self.registry:
            if instrument.name != "net.fault.injected":
                continue
            labels = dict(instrument.label_values)
            if "kind" in labels:
                counts[labels["kind"]] = instrument.value
        return counts

    def _record(self, kind: str) -> None:
        self._fault_total.inc()
        self._fault_total.labels(kind=kind).inc()

    # ------------------------------------------------------------------
    # crash windows
    # ------------------------------------------------------------------
    @staticmethod
    def _server_key(provider) -> str:
        url = getattr(getattr(provider, "server", None), "url", None)
        return url if url is not None else f"provider:{id(provider)}"

    def crash(self, provider) -> None:
        """Crash the provider's server now, regardless of the plan —
        for tests and benches that place crashes explicitly.  Persist
        consumers see it through :attr:`crash_epoch` and their dropped
        connections; pollers hit the restart window."""
        self._crash(provider)

    def _crash(self, provider) -> None:
        """Crash the provider's server: lose in-memory session state,
        drop its connections, open a restart window."""
        key = self._server_key(provider)
        self.crash_epoch += 1
        self._record("crash")
        self._down_for[key] = self.plan.spec.crash_length if self.plan else 1
        restart = getattr(provider, "restart", None)
        if restart is not None:
            restart()
        journal = getattr(provider, "journal", None)
        if journal is not None:
            # The journal is on disk: it survives the crash, possibly
            # damaged, and the restarting provider recovers from it.
            if self.plan is not None:
                truncate, corrupt, position = self.plan.next_journal()
                if truncate:
                    self._record("journal_truncate")
                    journal.damage_truncate(position)
                if corrupt:
                    self._record("journal_corrupt")
                    journal.damage_corrupt(position)
            recover = getattr(provider, "recover", None)
            if recover is not None:
                recover()
        self.disconnect_server(key)

    def _check_unavailable(self, provider) -> None:
        """Raise while the provider's server is inside a restart window.

        The attempt still costs a round trip (the client sent a request
        and waited out its timeout).
        """
        key = self._server_key(provider)
        remaining = self._down_for.get(key, 0)
        if remaining <= 0:
            return
        if remaining <= 1:
            self._down_for.pop(key, None)  # restarted after this attempt
        else:
            self._down_for[key] = remaining - 1
        self.charge_round_trip()
        self._record("unavailable")
        raise ServerUnavailable(f"server {key} is restarting")

    # ------------------------------------------------------------------
    # partitions and slow nodes
    # ------------------------------------------------------------------
    def partition(self, provider) -> None:
        """Cut provider↔consumer reachability until
        :meth:`heal_partition` — the chaos schedule's explicit window.

        Open connections drop (a partition looks like a dead TCP peer),
        but unlike :meth:`crash` the server's session state survives
        and ``crash_epoch`` does not bump: once healed, a persist
        session resumes from its cookie.
        """
        key = self._server_key(provider)
        self._partitioned[key] = -1
        self.disconnect_server(key)

    def heal_partition(self, provider=None) -> None:
        """End the partition for *provider* (every partition when
        ``None``); queued traffic flows again on the next exchange."""
        if provider is None:
            self._partitioned.clear()
        else:
            self._partitioned.pop(self._server_key(provider), None)

    def is_partitioned(self, provider) -> bool:
        return self._server_key(provider) in self._partitioned

    def set_slow(self, provider, added_latency_ms: float) -> None:
        """Inflate every exchange with *provider* by a fixed added
        latency (slow-node injection).  The surcharge lands on
        ``net.latency.elapsed_ms`` — the same virtual-clock ledger the
        scheduler and backoff ride — and on each delivery's
        ``delay_ms``, so per-operation timeouts fire exactly as they
        would against a congested peer.  ``0`` clears it.
        """
        key = self._server_key(provider)
        if added_latency_ms > 0:
            self._slow[key] = added_latency_ms
        else:
            self._slow.pop(key, None)

    def clear_slow(self, provider=None) -> None:
        if provider is None:
            self._slow.clear()
        else:
            self._slow.pop(self._server_key(provider), None)

    def _check_reachable(self, provider) -> float:
        """Partition and slow-node handling for one exchange attempt.

        Draws the plan's ``:p`` decisions (only when the spec enables
        them — the stream is independent, so other streams never
        shift), raises :class:`NetworkPartitioned` while a partition is
        cut (the attempt still costs a round trip: the client sent a
        request and waited out its timeout), and returns the added
        latency this exchange must carry.
        """
        key = self._server_key(provider)
        transient_ms = 0.0
        if self.plan is not None:
            spec = self.plan.spec
            if spec.partition > 0.0 or spec.slow > 0.0:
                cut, slow, added_ms = self.plan.next_partition()
                if cut and key not in self._partitioned:
                    self._partitioned[key] = spec.partition_length
                    self.disconnect_server(key)
                if slow:
                    transient_ms = added_ms
        remaining = self._partitioned.get(key)
        if remaining is not None:
            if remaining > 0:
                if remaining <= 1:
                    self._partitioned.pop(key, None)
                else:
                    self._partitioned[key] = remaining - 1
            self.charge_round_trip()
            self._record("partition")
            raise NetworkPartitioned(f"no route to server {key}")
        extra_ms = transient_ms + self._slow.get(key, 0.0)
        if extra_ms > 0:
            self._record("slow")
            self._fault_delay_ms.inc(extra_ms)
            self.elapsed_ms += extra_ms
        return extra_ms

    # ------------------------------------------------------------------
    # exchange hooks
    # ------------------------------------------------------------------
    def sync_exchange(self, provider, request, control) -> List[Delivery]:
        if self.plan is None:
            self._check_unavailable(provider)
            extra_ms = self._check_reachable(provider)
            deliveries = super().sync_exchange(provider, request, control)
            for delivery in deliveries:
                delivery.delay_ms += extra_ms
            return deliveries
        faults = self.plan.next_exchange()
        if faults.crash:
            self._crash(provider)
        self._check_unavailable(provider)
        extra_ms = self._check_reachable(provider)

        if faults.cookie_invalidate and control.cookie is not None:
            control = self._invalidate_cookie(provider, control)

        if faults.drop_request:
            self.charge_round_trip()
            self._record("drop_request")
            raise RequestDropped("request lost in flight")

        self.charge_round_trip()
        response = provider.handle(request, control)

        if faults.drop_response:
            self._record("drop_response")
            raise ResponseDropped("response lost in flight")
        if faults.truncate and response.updates:
            self._record("truncate")
            raise ResponseTruncated(
                "response stream cut mid-delivery",
                partial=self._truncated(response, faults.truncate_keep),
            )

        if faults.delay_ms > 0:
            self._record("delay")
            self._fault_delay_ms.inc(faults.delay_ms)
        delay_ms = faults.delay_ms + extra_ms
        deliveries = [Delivery(response, delay_ms=delay_ms)]
        if faults.duplicate:
            self._record("duplicate")
            deliveries.append(
                Delivery(response, delay_ms=delay_ms, duplicate=True)
            )
        return deliveries

    def persist_exchange(self, provider, request, deliver, cookie=None):
        faults = self.plan.next_exchange() if self.plan is not None else None
        if faults is not None and faults.crash:
            self._crash(provider)
        self._check_unavailable(provider)
        extra_ms = self._check_reachable(provider)

        if (
            faults is not None
            and faults.cookie_invalidate
            and cookie is not None
        ):
            # Corrupt the resumption cookie in flight; the provider
            # answers SyncProtocolError and the consumer re-subscribes
            # from scratch.
            self._record("cookie_invalidate")
            cookie = "<invalidated>"

        if faults is not None and faults.drop_request:
            self.charge_round_trip()
            self._record("drop_request")
            raise RequestDropped("subscribe request lost in flight")

        self.charge_round_trip()
        response, handle = self._open_persist(provider, request, deliver, cookie)

        if faults is not None and (faults.drop_response or faults.truncate):
            # The subscription opened server-side but the client never
            # saw the initial content: the client resets the connection,
            # ending the half-open session (no leak), and retries.
            handle.abandon()
            if faults.drop_response:
                self._record("drop_response")
                raise ResponseDropped("initial content lost in flight")
            self._record("truncate")
            raise ResponseTruncated(
                "initial content cut mid-delivery",
                partial=self._truncated(response, faults.truncate_keep),
            )
        return [Delivery(response, delay_ms=extra_ms)], handle

    def reconcile_exchange(self, provider, request, rreq):
        if self.plan is None:
            self._check_unavailable(provider)
            self._check_reachable(provider)
            return super().reconcile_exchange(provider, request, rreq)
        faults = self.plan.next_exchange()
        if faults.crash:
            self._crash(provider)
        self._check_unavailable(provider)
        self._check_reachable(provider)

        if faults.drop_request:
            self.charge_round_trip()
            self._record("drop_request")
            raise RequestDropped("reconcile request lost in flight")

        self.charge_round_trip()
        response = provider.reconcile(request, rreq)
        self.stats.bytes_sent += response.pdu_bytes

        if faults.drop_response:
            self._record("drop_response")
            raise ResponseDropped("sketch lost in flight")

        corrupt, position = self.plan.next_reconcile()
        if corrupt:
            # In-flight sketch damage: the consumer's verified decode
            # detects it (checksummed peel + zero-residue rule) and
            # doubles or falls back — never applies garbage.
            from ..sync.reconcile import corrupt_cell

            self._record("sketch_corrupt")
            corrupt_cell(response.sketch, position)

        if faults.delay_ms > 0:
            self._record("delay")
            self._fault_delay_ms.inc(faults.delay_ms)
        return response

    def reconcile_fetch_exchange(self, provider, request, fetch):
        if self.plan is None:
            self._check_unavailable(provider)
            extra_ms = self._check_reachable(provider)
            deliveries = super().reconcile_fetch_exchange(provider, request, fetch)
            for delivery in deliveries:
                delivery.delay_ms += extra_ms
            return deliveries
        faults = self.plan.next_exchange()
        if faults.crash:
            self._crash(provider)
        self._check_unavailable(provider)
        extra_ms = self._check_reachable(provider)

        if faults.drop_request:
            self.charge_round_trip()
            self._record("drop_request")
            raise RequestDropped("fetch request lost in flight")

        self.charge_round_trip()
        self.stats.bytes_sent += fetch.pdu_bytes
        response = provider.reconcile_fetch(request, fetch)

        if faults.drop_response:
            self._record("drop_response")
            raise ResponseDropped("fetch response lost in flight")
        if faults.truncate and response.updates:
            self._record("truncate")
            raise ResponseTruncated(
                "fetch stream cut mid-delivery",
                partial=self._truncated(response, faults.truncate_keep),
            )

        if faults.delay_ms > 0:
            self._record("delay")
            self._fault_delay_ms.inc(faults.delay_ms)
        delay_ms = faults.delay_ms + extra_ms
        deliveries = [Delivery(response, delay_ms=delay_ms)]
        if faults.duplicate:
            self._record("duplicate")
            deliveries.append(
                Delivery(response, delay_ms=delay_ms, duplicate=True)
            )
        return deliveries

    def damage_snapshot(self, store) -> None:
        """Apply the plan's snapshot-damage decisions to *store*.

        Called by tests and benches at the moment a replica restarts —
        just before the restarting consumer reads its
        :class:`~repro.sync.snapshot.SnapshotStore` — mirroring how
        :meth:`_crash` damages a provider's journal at crash time.
        Truncation and corruption are *detectable* damage (the
        restart's checksum verification discards the snapshot); a
        stale cookie is intact-but-aged damage the provider refuses,
        exercising the ladder's fall-through instead.
        """
        if self.plan is None:
            return
        truncate, corrupt, stale, position = self.plan.next_snapshot()
        if truncate:
            self._record("snapshot_truncate")
            store.damage_truncate(position)
        if corrupt:
            self._record("snapshot_corrupt")
            store.damage_corrupt(position)
        if stale:
            self._record("snapshot_stale")
            store.damage_stale_cookie()

    def deliver_batch(self, deliver: Callable, updates: List) -> int:
        """Apply batch-boundary faults to one flushed persist batch.

        Draws from the independent ``:b`` stream.  A dropped batch
        never reaches the wire (nothing charged, 0 delivered); a
        truncated batch delivers — and charges — a proper prefix,
        exactly as :class:`ResponseTruncated.partial` surfaces the
        delivered prefix of a cut poll response.  The delivering
        :class:`~repro.sync.delivery.DeliveryQueue` reports the
        delivered count back to the caller, and the *undelivered* tail
        is simply gone — convergence then rides on the consumer's
        resilience ladder, as with every other transport fault.
        """
        if self.plan is None or not updates:
            return super().deliver_batch(deliver, updates)
        drop, truncate, keep_position = self.plan.next_batch()
        if drop:
            self._record("batch_drop")
            return 0
        if truncate and len(updates) > 1:
            keep = min(int(keep_position * len(updates)), len(updates) - 1)
            self._record("batch_truncate")
            return super().deliver_batch(deliver, updates[:keep])
        return super().deliver_batch(deliver, updates)

    def wrap_deliver(self, deliver: Callable) -> Callable:
        """Apply notification-level faults to a persist deliver callback.

        Composes over the base wrapper (wire-accurate charging when
        enabled) so a duplicated notification charges twice and a
        dropped one never reaches the wire accounting — drops happen
        provider-side, before encoding."""
        deliver = super().wrap_deliver(deliver)

        def faulty_deliver(update):
            if self.plan is None:
                deliver(update)
                return
            drop, duplicate = self.plan.next_notification()
            if drop:
                self._record("notification_drop")
                return
            deliver(update)
            if duplicate:
                self._record("notification_duplicate")
                deliver(update)

        return faulty_deliver

    # ------------------------------------------------------------------
    # fault construction helpers
    # ------------------------------------------------------------------
    def _invalidate_cookie(self, provider, control):
        """Expire the presented cookie: server-side when the provider
        supports it (the admin time limit firing), else by corrupting
        the cookie in flight.  Either way the provider answers with
        ``SyncProtocolError`` — §5's reload recovery path."""
        self._record("cookie_invalidate")
        invalidate = getattr(provider, "invalidate_cookie", None)
        if invalidate is not None:
            invalidate(control.cookie)
            return control
        return replace(control, cookie="<invalidated>")

    @staticmethod
    def _truncated(response, keep_fraction: float):
        """A proper prefix of *response*, cookie stripped (it travels
        last, after the update stream)."""
        from ..sync.protocol import SyncResponse

        keep = min(
            int(keep_fraction * len(response.updates)),
            len(response.updates) - 1,
        )
        return SyncResponse(
            updates=list(response.updates[:keep]),
            cookie=None,
            initial=response.initial,
            uses_retain=response.uses_retain,
        )
