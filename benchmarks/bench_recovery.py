"""Recovery benches: crash recovery (E13), sketch reconciliation (E17)
and consumer snapshot warm starts (E18).

``test_recovery`` — a durable :class:`ResyncProvider` journals session
state so a crash is survivable: consumers keep their cookies and the
first post-crash poll carries only the delta (docs/PROTOCOL.md §10).
Without the journal a provider restart voids every session and each
consumer must reload its full content.  This bench quantifies that
difference as the session count grows: post-crash traffic (bytes on
the wire after the crash) and recovery time for the journal replay
itself.

``test_reconcile_divergence`` — the divergence sweep for the third
recovery tier (docs/RECOVERY.md): a consumer whose ``:h`` cookie died
recovers through sketch reconciliation (docs/PROTOCOL.md §11) instead
of a full rebuild.  Sweeps the replica's divergence from 0.1% to 5% of
a 1000-entry content and compares bytes on the wire against the
rebuild path for the identical schedule.

``test_snapshot_warmstart`` — the recovery ladder's *first* rung
(docs/RECOVERY.md): a replica that dumped its content + cookie to a
:class:`~repro.sync.snapshot.SnapshotStore` restarts, warm-starts from
the verified dump and resumes via the cookie path, paying only for the
entries that changed while it was down.  Sweeps the divergence accrued
during the outage from 0.1% to 5% of a 1000-entry content and compares
recovery bytes on the wire against a cold consumer rebuilding the same
content from scratch.

All sweeps are deterministic (fixed directory, fixed update schedule,
no network faults), so their ``*_bytes_sent`` metrics are
regression-diffable by ``validate_results.py``; ``recovery_seconds``
is wall time, measured as a warm-up plus median-of-N replay cycles so
a cold start cannot land as the committed number, and is gated only by
the validator's generous ``*_seconds`` sanity bound.  The in-bench floors — reload
traffic at least 5x the durable resume at 100 sessions, rebuild
traffic at least 10x the reconcile tier at <=1% divergence, cold
rebuild at least 5x the warm start at <=5% divergence — fail on any
reversion to reload-after-restart independent of runner speed.
"""

from __future__ import annotations

import time
from statistics import median

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification, SimulatedNetwork
from repro.sync import (
    DurabilityConfig,
    MemoryJournal,
    ReconcileConfig,
    ResilientConsumer,
    ResyncProvider,
    SyncedContent,
    build_sketch,
)

from .common import quiesced_gc, report

DEPARTMENTS = 12
PERSONS_PER_DEPT = 10
SESSION_COUNTS = (25, 50, 100)
UPDATES = DEPARTMENTS  # one touched entry per department
SNAPSHOT_INTERVAL = 64
MIN_TRAFFIC_RATIO = 5.0  # reload must cost >=5x the durable resume
TIMING_REPEATS = 5  # median-of-N journal replays per cell


def build_master() -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for dept in range(DEPARTMENTS):
        for person in range(PERSONS_PER_DEPT):
            name = f"P{dept:02d}-{person:02d}"
            master.add(
                Entry(
                    f"cn={name},o=xyz",
                    {
                        "objectClass": ["person"],
                        "cn": name,
                        "sn": "T",
                        "departmentNumber": f"D{dept:02d}",
                    },
                )
            )
    return master


def open_sessions(provider, count: int):
    """*count* consumers, one department filter each, initial content
    delivered; returns (consumers, initial bytes on the wire)."""
    consumers = []
    initial_bytes = 0
    for i in range(count):
        request = SearchRequest(
            "o=xyz", Scope.SUB, f"(departmentNumber=D{i % DEPARTMENTS:02d})"
        )
        content = SyncedContent(request)
        initial_bytes += sum(u.pdu_bytes for u in content.poll(provider).updates)
        consumers.append(content)
    return consumers, initial_bytes


def mutate(master: DirectoryServer) -> None:
    """One modified entry per department: every session has a 1-entry
    delta pending when the crash hits."""
    for dept in range(DEPARTMENTS):
        master.modify(
            f"cn=P{dept:02d}-00,o=xyz", [Modification.replace("sn", f"S{dept}")]
        )


def run_durable_cell(count: int) -> dict:
    master = build_master()
    journal = MemoryJournal()
    provider = ResyncProvider(
        master,
        durability=DurabilityConfig(snapshot_interval=SNAPSHOT_INTERVAL),
        journal=journal,
    )
    consumers, initial_bytes = open_sessions(provider, count)
    mutate(master)

    # recover() compacts the journal when it finishes, so each timed
    # cycle restores the crash-time image first and replays the
    # identical log; warm-up + median-of-N keeps a one-off cold start
    # out of the committed recovery time.
    crash_snapshot, crash_records, crash_dropped = journal.load()
    assert crash_dropped == 0
    samples = []
    replays = []
    with quiesced_gc():
        for _ in range(1 + TIMING_REPEATS):  # first cycle is the warm-up
            journal.write_snapshot(crash_snapshot)  # truncates the tail too
            for record in crash_records:
                journal.append(record)
            provider.restart()  # the crash
            started = time.perf_counter()
            replays.append(provider.recover())
            samples.append(time.perf_counter() - started)
    recovery_seconds = median(samples[1:])
    replayed = replays[-1]
    assert len(set(replays)) == 1  # every cycle folds the same journal
    post_bytes = 0
    for content in consumers:
        post_bytes += sum(u.pdu_bytes for u in content.poll(provider).updates)
        assert content.matches_master(master)
    assert provider.active_session_count == count
    return {
        "initial_bytes": initial_bytes,
        "post_bytes": post_bytes,
        "recovery_seconds": recovery_seconds,
        "replayed": replayed,
        "journal_records": journal.record_count,
    }


def run_reload_cell(count: int) -> dict:
    """The same schedule against a journal-less provider: the restart
    voids every session and consumers fall back to full reloads."""
    master = build_master()
    provider = ResyncProvider(master)
    consumers, initial_bytes = open_sessions(provider, count)
    mutate(master)
    provider.restart()  # the crash: nothing to recover from
    post_bytes = 0
    for content in consumers:
        post_bytes += sum(u.pdu_bytes for u in content.reload(provider).updates)
        assert content.matches_master(master)
    return {"initial_bytes": initial_bytes, "post_bytes": post_bytes}


def test_recovery(benchmark):
    rows = []
    metrics = {}
    for count in SESSION_COUNTS:
        durable = run_durable_cell(count)
        reload_ = run_reload_cell(count)
        ratio = reload_["post_bytes"] / max(durable["post_bytes"], 1)
        rows.append(
            [
                count,
                durable["post_bytes"],
                reload_["post_bytes"],
                round(ratio, 1),
                durable["replayed"],
                round(durable["recovery_seconds"] * 1000, 2),
            ]
        )
        metrics[f"s{count}_durable_bytes_sent"] = durable["post_bytes"]
        metrics[f"s{count}_reload_bytes_sent"] = reload_["post_bytes"]
        metrics[f"s{count}_replayed"] = durable["replayed"]
        metrics[f"s{count}_recovery_seconds"] = durable["recovery_seconds"]

    # Identical schedules: the durable resume must beat the reload by a
    # wide margin, not by noise — the headline robustness claim.
    assert (
        metrics["s100_reload_bytes_sent"]
        >= MIN_TRAFFIC_RATIO * metrics["s100_durable_bytes_sent"]
    )
    # The delta a recovered session serves never exceeds what a live one
    # would have: post-crash traffic is O(delta), not O(content).
    for count in SESSION_COUNTS:
        assert metrics[f"s{count}_durable_bytes_sent"] > 0

    report(
        "recovery",
        "Post-crash traffic and recovery time vs session count",
        [
            "sessions",
            "durable bytes",
            "reload bytes",
            "ratio",
            "replayed",
            "recover ms",
        ],
        rows,
        params={
            "departments": DEPARTMENTS,
            "persons_per_dept": PERSONS_PER_DEPT,
            "updates": UPDATES,
            "snapshot_interval": SNAPSHOT_INTERVAL,
            "session_counts": ",".join(str(c) for c in SESSION_COUNTS),
        },
        metrics=metrics,
        paper_expected=None,
    )

    # Timed unit: one full journal replay at the largest session count.
    master = build_master()
    provider = ResyncProvider(
        master,
        durability=DurabilityConfig(snapshot_interval=SNAPSHOT_INTERVAL),
        journal=MemoryJournal(),
    )
    open_sessions(provider, SESSION_COUNTS[-1])
    mutate(master)
    provider.restart()
    benchmark(provider.recover)


# ----------------------------------------------------------------------
# E17 — sketch reconciliation vs full rebuild across divergence
# ----------------------------------------------------------------------
RECONCILE_CONTENT = 1000
DIVERGENCES = (1, 5, 10, 50)  # 0.1% .. 5% of the content
MIN_RECONCILE_RATIO = 10.0  # rebuild must cost >=10x at <=1% divergence
RECONCILE_REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=D00)")


def build_reconcile_master() -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(RECONCILE_CONTENT):
        name = f"R{i:04d}"
        master.add(
            Entry(
                f"cn={name},o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": name,
                    "sn": "T",
                    "departmentNumber": "D00",
                },
            )
        )
    return master


def diverge(master: DirectoryServer, amount: int) -> None:
    """*amount* entries' worth of divergence: mostly modifies, one
    delete and one add once the delta is big enough to carry them."""
    mods = amount
    if amount >= 3:
        mods = amount - 2
        master.delete(f"cn=R{RECONCILE_CONTENT - 1:04d},o=xyz")
        master.add(
            Entry(
                f"cn=N{amount:04d},o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"N{amount:04d}",
                    "sn": "T",
                    "departmentNumber": "D00",
                },
            )
        )
    for i in range(mods):
        master.modify(f"cn=R{i:04d},o=xyz", [Modification.replace("sn", f"Z{i}")])


def run_reconcile_cell(amount: int, tier_enabled: bool) -> dict:
    """One recovery after *amount* entries of divergence: the full
    ladder when *tier_enabled*, the rebuild fallback otherwise.

    The schedule mints an ``:h`` cookie (overflowing a 2-entry session
    history), diverges the master while the session is dead, and
    measures only the recovery cycle's bytes on the wire.
    """
    master = build_reconcile_master()
    provider = ResyncProvider(
        master,
        durability=DurabilityConfig(history_max_entries=2),
        journal=MemoryJournal(),
    )
    net = SimulatedNetwork()
    consumer = ResilientConsumer(
        RECONCILE_REQUEST,
        provider,
        network=net,
        reconcile_config=ReconcileConfig() if tier_enabled else None,
    )
    consumer.sync_once()
    for i in range(4):  # overflow the history: the cookie gains :h
        master.modify(
            f"cn=R{900 + i:04d},o=xyz", [Modification.replace("sn", "ovf")]
        )
    consumer.sync_once()
    assert consumer._cookie_overflowed()
    diverge(master, amount)
    provider.invalidate_cookie(consumer.content.cookie)

    before = net.stats.snapshot()
    assert consumer.sync_once() is not None
    recovery = net.stats - before
    assert consumer.content.matches_master(master)
    registry = net.registry.to_dict()
    if tier_enabled:
        assert registry.get("sync.resilient.reloads", 0) == 0
        assert registry.get("sync.reconcile.decode_success", 0) == 1
    return {
        "bytes": recovery.bytes_sent,
        "round_trips": recovery.round_trips,
        "rounds": registry.get("sync.reconcile.rounds", 0),
        "sketch_bytes": registry.get("sync.reconcile.sketch_bytes", 0),
    }


def test_reconcile_divergence(benchmark):
    rows = []
    metrics = {}
    for amount in DIVERGENCES:
        reconcile = run_reconcile_cell(amount, tier_enabled=True)
        rebuild = run_reconcile_cell(amount, tier_enabled=False)
        ratio = rebuild["bytes"] / max(reconcile["bytes"], 1)
        rows.append(
            [
                f"{100.0 * amount / RECONCILE_CONTENT:.1f}%",
                reconcile["bytes"],
                rebuild["bytes"],
                round(ratio, 1),
                reconcile["rounds"],
                reconcile["sketch_bytes"],
            ]
        )
        metrics[f"d{amount}_reconcile_bytes_sent"] = reconcile["bytes"]
        metrics[f"d{amount}_rebuild_bytes_sent"] = rebuild["bytes"]
        metrics[f"d{amount}_sketch_rounds"] = reconcile["rounds"]

    # The headline claim of the tier: at realistic (<=1%) divergence the
    # rebuild costs an order of magnitude more than reconciliation.
    for amount in DIVERGENCES:
        if amount <= RECONCILE_CONTENT // 100:
            assert (
                metrics[f"d{amount}_rebuild_bytes_sent"]
                >= MIN_RECONCILE_RATIO * metrics[f"d{amount}_reconcile_bytes_sent"]
            ), f"reconcile tier lost its edge at divergence {amount}"

    report(
        "reconcile",
        "Recovery traffic: sketch reconciliation vs full rebuild",
        [
            "divergence",
            "reconcile bytes",
            "rebuild bytes",
            "ratio",
            "rounds",
            "sketch bytes",
        ],
        rows,
        params={
            "content_entries": RECONCILE_CONTENT,
            "divergences": ",".join(str(d) for d in DIVERGENCES),
            "history_max_entries": 2,
        },
        metrics=metrics,
        paper_expected=None,
    )

    # Timed unit: building the master-side sketch over the full content
    # (the provider-side cost of serving one reconcile round).
    master = build_reconcile_master()
    provider = ResyncProvider(master)
    content = provider._search_content(RECONCILE_REQUEST)
    benchmark(lambda: build_sketch(content, 256))


# ----------------------------------------------------------------------
# E18 — snapshot warm start vs cold rebuild across outage divergence
# ----------------------------------------------------------------------
MIN_WARMSTART_RATIO = 5.0  # cold rebuild must cost >=5x at <=5% divergence


def run_warmstart_cell(amount: int) -> dict:
    """One replica restart after *amount* entries diverged during the
    outage: warm start (snapshot + cookie resume) vs cold rebuild.

    The replica syncs and snapshots, "goes down" while the master
    diverges, then restarts from the store against the same provider
    (whose session survived the replica's outage) — only the restart
    cycle's bytes are measured.  The cold consumer replays the same
    recovery moment with no snapshot state.
    """
    from repro.sync import MemorySnapshotStore

    master = build_reconcile_master()
    provider = ResyncProvider(master)
    store = MemorySnapshotStore()

    warm_net = SimulatedNetwork()
    first = ResilientConsumer(
        RECONCILE_REQUEST, provider, network=warm_net, snapshot_store=store
    )
    first.sync_once()
    snapshot_size = store.size_bytes
    assert snapshot_size > 0

    diverge(master, amount)  # the outage: the master moves on

    before = warm_net.stats.snapshot()
    restarted = ResilientConsumer(
        RECONCILE_REQUEST, provider, network=warm_net, snapshot_store=store
    )
    assert restarted.warm_started
    started = time.perf_counter()
    assert restarted.sync_once() is not None
    warm_seconds = time.perf_counter() - started
    warm = warm_net.stats - before
    assert restarted.content.matches_master(master)
    registry = warm_net.registry.to_dict()
    assert registry.get("sync.resilient.reloads", 0) == 0
    assert registry.get("sync.snapshot.warm_starts", 0) == 1

    cold_net = SimulatedNetwork()
    cold = ResilientConsumer(RECONCILE_REQUEST, provider, network=cold_net)
    assert cold.sync_once() is not None
    assert cold.content.matches_master(master)

    return {
        "warm_bytes": warm.bytes_sent,
        "warm_round_trips": warm.round_trips,
        "warm_seconds": warm_seconds,
        "cold_bytes": cold_net.stats.bytes_sent,
        "snapshot_size": snapshot_size,
        "restored_entries": int(registry.get("sync.snapshot.restored_entries", 0)),
    }


def test_snapshot_warmstart(benchmark):
    rows = []
    metrics = {}
    for amount in DIVERGENCES:
        cell = run_warmstart_cell(amount)
        ratio = cell["cold_bytes"] / max(cell["warm_bytes"], 1)
        rows.append(
            [
                f"{100.0 * amount / RECONCILE_CONTENT:.1f}%",
                cell["warm_bytes"],
                cell["cold_bytes"],
                round(ratio, 1),
                cell["restored_entries"],
                cell["snapshot_size"],
            ]
        )
        metrics[f"d{amount}_warm_bytes_sent"] = cell["warm_bytes"]
        metrics[f"d{amount}_cold_bytes_sent"] = cell["cold_bytes"]
        metrics[f"d{amount}_warm_round_trips"] = cell["warm_round_trips"]
        metrics[f"d{amount}_snapshot_size"] = cell["snapshot_size"]

    # The headline claim of the tier (ISSUE 7 acceptance): across the
    # whole <=5% sweep the cold rebuild moves at least 5x the bytes the
    # warm start does.
    for amount in DIVERGENCES:
        assert (
            metrics[f"d{amount}_cold_bytes_sent"]
            >= MIN_WARMSTART_RATIO * metrics[f"d{amount}_warm_bytes_sent"]
        ), f"snapshot warm start lost its edge at divergence {amount}"

    report(
        "recovery_warmstart",
        "Replica restart traffic: snapshot warm start vs cold rebuild",
        [
            "divergence",
            "warm bytes",
            "cold bytes",
            "ratio",
            "restored",
            "snapshot B",
        ],
        rows,
        params={
            "content_entries": RECONCILE_CONTENT,
            "divergences": ",".join(str(d) for d in DIVERGENCES),
        },
        metrics=metrics,
        paper_expected=None,
    )

    # Timed unit: one staged warm start (load + verify + install) of
    # the full 1000-entry dump — the replica-side restart cost.
    from repro.sync import MemorySnapshotStore, SnapshotRecoverer, SyncedContent

    master = build_reconcile_master()
    provider = ResyncProvider(master)
    content = SyncedContent(RECONCILE_REQUEST)
    content.poll(provider)
    store = MemorySnapshotStore()
    store.save(content.entries.values(), content.cookie)

    def warm_start_once():
        recoverer = SnapshotRecoverer(store, SyncedContent(RECONCILE_REQUEST))
        assert recoverer.warm_start()

    benchmark(warm_start_once)
