"""Replica consistency: the ReSync protocol and baseline mechanisms (§5).

Masters expose *providers* (ReSync with complete session history, the
retain variant for incomplete history, changelog, tombstone and full
reload baselines); replicas hold :class:`SyncedContent` per replicated
query and poll providers for the minimal update set.
"""

from .baselines import (
    Changelog,
    ChangelogProvider,
    ChangelogRecord,
    FullReloadProvider,
    TombstoneProvider,
    TombstoneStore,
)
from .consumer import SyncedContent
from .durability import (
    AdmissionController,
    DurabilityConfig,
    FileJournal,
    JournalBackend,
    MemoryJournal,
)
from .protocol import SyncProtocolError, SyncResponse, SyncUpdate
from .resilient import ResilientConsumer, RetryPolicy
from .resync import PersistHandle, ResyncProvider, RetainResyncProvider
from .router import RoutedSession, SessionRouter
from .session import Session, SessionStore

__all__ = [
    "SyncUpdate",
    "SyncResponse",
    "SyncProtocolError",
    "Session",
    "SessionStore",
    "ResyncProvider",
    "RetainResyncProvider",
    "PersistHandle",
    "SessionRouter",
    "RoutedSession",
    "SyncedContent",
    "ResilientConsumer",
    "RetryPolicy",
    "DurabilityConfig",
    "JournalBackend",
    "MemoryJournal",
    "FileJournal",
    "AdmissionController",
    "Changelog",
    "ChangelogRecord",
    "ChangelogProvider",
    "TombstoneStore",
    "TombstoneProvider",
    "FullReloadProvider",
]
