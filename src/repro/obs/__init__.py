"""Unified observability: metrics registry + tracing spans.

The measurement substrate every layer reports through (ISSUE 1):

* :mod:`repro.obs.registry` — named :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` / :class:`Timer` instruments with hierarchical
  names and labeled children, grouped in a :class:`MetricsRegistry`
  with ``to_dict`` / ``to_prometheus_text`` / snapshot-diff exporters;
* :mod:`repro.obs.tracing` — ``span("layer.component.phase")`` context
  managers recording nested durations and counts, no-ops unless a
  :class:`TraceCollector` is installed.

Naming conventions, the full instrument table and worked examples live
in docs/OBSERVABILITY.md.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    default_buckets,
    snapshot_diff,
)
from .tracing import (
    SpanRecord,
    TraceCollector,
    collecting,
    get_collector,
    install_collector,
    span,
    uninstall_collector,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "snapshot_diff",
    "default_buckets",
    "span",
    "SpanRecord",
    "TraceCollector",
    "install_collector",
    "uninstall_collector",
    "get_collector",
    "collecting",
]
