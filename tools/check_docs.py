#!/usr/bin/env python3
"""Docs-consistency checks (CI `lint` job, alongside ruff).

Two classes of drift this catches (both have bitten this repo's docs
before they were checked):

1. **Dead intra-repo links** — every relative markdown link in every
   tracked ``*.md`` must resolve to a file or directory in the tree.
   External (``http://``, ``https://``, ``mailto:``) and pure-anchor
   (``#...``) links are out of scope.
2. **Phantom instruments** — every metric and span name listed in the
   docs/OBSERVABILITY.md naming table (§2) must still exist in
   ``src/``.  Names are usually literal at their creation site
   (``registry.counter("sync.reconcile.attempts")``); a few families
   are constructed (``net.traffic.<field>``), so a name also passes
   when both its family prefix (``net.traffic.``) and its leaf
   (``round_trips``) occur in the sources.  Templated rows
   (``server.op.<op>``) are checked by family alone.

Run from the repository root::

    python tools/check_docs.py

Exits 0 when clean, 1 with a per-finding report otherwise.
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
OBSERVABILITY = os.path.join(REPO_ROOT, "docs", "OBSERVABILITY.md")

SKIP_DIRS = {
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "__pycache__",
    ".ruff_cache",
    "node_modules",
}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: A naming-table row: ``| `some.metric.name` | ...``
NAME_ROW_RE = re.compile(r"^\|\s*`([a-z0-9_.<>]+)`\s*\|")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files() -> list:
    found = []
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def source_texts() -> list:
    texts = []
    for dirpath, dirnames, filenames in os.walk(SRC_ROOT):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as fh:
                    texts.append(fh.read())
    return texts


def check_links(md_files: list) -> list:
    problems = []
    for path in md_files:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        # Fenced code blocks routinely contain example "links" — skip them.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        rel = os.path.relpath(path, REPO_ROOT)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target_path)
            )
            if not os.path.exists(resolved):
                problems.append(f"{rel}: dead link -> {target}")
    return problems


def documented_names() -> list:
    """Metric and span names from the OBSERVABILITY.md naming tables."""
    names = []
    with open(OBSERVABILITY, encoding="utf-8") as fh:
        for line in fh:
            match = NAME_ROW_RE.match(line.strip())
            if match and "." in match.group(1):
                names.append(match.group(1))
    return names


def check_instruments(sources: list) -> list:
    problems = []
    names = documented_names()
    if not names:
        return ["docs/OBSERVABILITY.md: no instrument names parsed — "
                "has the naming-table format changed?"]
    for name in names:
        family, _, leaf = name.rpartition(".")
        templated = "<" in name
        if not templated and any(name in text for text in sources):
            continue
        family_found = any(family + "." in text for text in sources)
        if templated:
            if family_found:
                continue
            problems.append(
                f"docs/OBSERVABILITY.md: templated instrument `{name}`: "
                f"family `{family}.` not found in src/"
            )
            continue
        leaf_found = any(leaf in text for text in sources)
        if family_found and leaf_found:
            continue
        problems.append(
            f"docs/OBSERVABILITY.md: instrument `{name}` not found in src/ "
            f"(neither literally nor as family `{family}.` + leaf `{leaf}`)"
        )
    return problems


def main() -> int:
    md_files = markdown_files()
    sources = source_texts()
    problems = check_links(md_files) + check_instruments(sources)
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        print(f"\n{len(problems)} docs-consistency problem(s)")
        return 1
    names = len(documented_names())
    print(
        f"ok: {len(md_files)} markdown files link-clean, "
        f"{names} documented instruments present in src/"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
