"""Replica consistency: the ReSync protocol and baseline mechanisms (§5).

Masters expose *providers* (ReSync with complete session history, the
retain variant for incomplete history, changelog, tombstone and full
reload baselines); replicas hold :class:`SyncedContent` per replicated
query and poll providers for the minimal update set.
"""

from .baselines import (
    Changelog,
    ChangelogProvider,
    ChangelogRecord,
    FullReloadProvider,
    TombstoneProvider,
    TombstoneStore,
)
from .consumer import SyncedContent
from .delivery import BatchConfig, DeliveryQueue
from .durability import (
    AdmissionController,
    DurabilityConfig,
    FileJournal,
    JournalBackend,
    MemoryJournal,
)
from .protocol import (
    ReconcileFetch,
    ReconcileRequest,
    ReconcileResponse,
    SyncProtocolError,
    SyncResponse,
    SyncUpdate,
)
from .reconcile import (
    EntrySketch,
    ReconcileConfig,
    build_sketch,
    cells_for_divergence,
    corrupt_cell,
    entry_fingerprint,
    entry_key,
)
from .resilient import HEALTH_STATES, HealthPolicy, ResilientConsumer, RetryPolicy
from .resync import PersistHandle, ResyncProvider, RetainResyncProvider
from .snapshot import (
    FileSnapshotStore,
    MemorySnapshotStore,
    SnapshotDocument,
    SnapshotError,
    SnapshotRecoverer,
    SnapshotStore,
)
from .router import RoutedSession, SessionRouter
from .session import Session, SessionStore

__all__ = [
    "SyncUpdate",
    "SyncResponse",
    "SyncProtocolError",
    "Session",
    "SessionStore",
    "ResyncProvider",
    "RetainResyncProvider",
    "PersistHandle",
    "SessionRouter",
    "RoutedSession",
    "SyncedContent",
    "BatchConfig",
    "DeliveryQueue",
    "ResilientConsumer",
    "RetryPolicy",
    "HealthPolicy",
    "HEALTH_STATES",
    "ReconcileRequest",
    "ReconcileResponse",
    "ReconcileFetch",
    "ReconcileConfig",
    "EntrySketch",
    "build_sketch",
    "cells_for_divergence",
    "corrupt_cell",
    "entry_key",
    "entry_fingerprint",
    "DurabilityConfig",
    "JournalBackend",
    "MemoryJournal",
    "FileJournal",
    "AdmissionController",
    "SnapshotStore",
    "MemorySnapshotStore",
    "FileSnapshotStore",
    "SnapshotDocument",
    "SnapshotError",
    "SnapshotRecoverer",
    "Changelog",
    "ChangelogRecord",
    "ChangelogProvider",
    "TombstoneStore",
    "TombstoneProvider",
    "FullReloadProvider",
]
