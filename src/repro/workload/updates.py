"""Update workload: mutations applied at the master during experiments.

Directories are read-mostly (§1) but the update-traffic experiments
(Figures 6/7) need a realistic modification stream:

* benign employee modifies (phone, title, location) — the entry stays
  in whatever filter content it was in (``Es11``);
* department reassignments — the entry moves across department-filter
  contents (``Es01``/``Es10`` for ``(&(dept=..)(div=..))`` filters);
* hires (adds) and leaves (deletes) of employees;
* occasional renames (modifyDN) — the §5.2 delete-then-add case;
* rare department-entry modifies — "department entries … have a very
  low update rate" (§7.3(b)).

Deterministic given the seed; keeps its own view of live employees so
it never targets a DN it already deleted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..server.directory import DirectoryServer
from ..server.operations import Modification
from .datagen import EnterpriseDirectory

__all__ = ["UpdateConfig", "UpdateGenerator"]


@dataclass(frozen=True)
class UpdateConfig:
    """Relative weights of the update operation kinds."""

    benign_modify: float = 0.62
    department_change: float = 0.15
    hire: float = 0.08
    leave: float = 0.08
    rename: float = 0.02
    department_entry_modify: float = 0.05
    seed: int = 7


class UpdateGenerator:
    """Applies randomized update operations to a master server."""

    def __init__(
        self,
        directory: EnterpriseDirectory,
        master: DirectoryServer,
        config: Optional[UpdateConfig] = None,
    ):
        self.directory = directory
        self.master = master
        self.config = config if config is not None else UpdateConfig()
        self._rng = random.Random(self.config.seed)
        self._employees: List[DN] = [e.dn for e in directory.all_employees()]
        self._departments: List[DN] = [d.dn for d in directory.departments]
        self._division_numbers = sorted(
            {d.first("divisionNumber") for d in directory.departments}
        )
        self._hire_counter = 0
        self.applied = 0

    # ------------------------------------------------------------------
    def apply(self, count: int = 1) -> int:
        """Apply *count* random updates at the master; returns how many
        actually committed (targets may be missing after churn)."""
        committed = 0
        for _ in range(count):
            if self._apply_one():
                committed += 1
        return committed

    def _apply_one(self) -> bool:
        cfg = self.config
        kinds = (
            ("benign", cfg.benign_modify),
            ("dept_change", cfg.department_change),
            ("hire", cfg.hire),
            ("leave", cfg.leave),
            ("rename", cfg.rename),
            ("dept_entry", cfg.department_entry_modify),
        )
        total = sum(w for _k, w in kinds)
        u = self._rng.random() * total
        acc = 0.0
        kind = kinds[-1][0]
        for name, weight in kinds:
            acc += weight
            if u <= acc:
                kind = name
                break
        try:
            handler = getattr(self, f"_do_{kind}")
            if handler():
                self.applied += 1
                return True
            return False
        except Exception:
            return False  # churn race (entry vanished); skip this tick

    # ------------------------------------------------------------------
    # operation kinds
    # ------------------------------------------------------------------
    def _random_employee(self) -> Optional[DN]:
        while self._employees:
            dn = self._rng.choice(self._employees)
            if self.master.store.get(dn) is not None:
                return dn
            self._employees.remove(dn)
        return None

    def _do_benign(self) -> bool:
        dn = self._random_employee()
        if dn is None:
            return False
        phone = (
            f"{self._rng.randrange(200, 999)}-{self._rng.randrange(100, 999)}"
            f"-{self._rng.randrange(1000, 9999)}"
        )
        self.master.modify(dn, [Modification.replace("telephoneNumber", phone)])
        return True

    def _do_dept_change(self) -> bool:
        dn = self._random_employee()
        if dn is None:
            return False
        division = self._rng.choice(self._division_numbers)
        dept = f"{division}{self._rng.randrange(40):02d}"
        self.master.modify(
            dn,
            [
                Modification.replace("departmentNumber", dept),
                Modification.replace("divisionNumber", division),
            ],
        )
        return True

    def _do_hire(self) -> bool:
        self._hire_counter += 1
        template = self.master.store.get(self._rng.choice(self._employees))
        if template is None:
            return False
        country_dn = template.dn.parent
        cc = country_dn.rdn.value
        uid = f"newhire{self._hire_counter}"
        serial_src = template.first("serialNumber") or "000000XX"
        serial = f"{serial_src[:4]}{90 + self._hire_counter % 10:02d}{cc.upper()}"
        entry = Entry(
            country_dn.child(f"cn=New Hire {self._hire_counter}"),
            {
                "objectClass": ["inetOrgPerson", "organizationalPerson", "person", "top"],
                "cn": f"New Hire {self._hire_counter}",
                "sn": "Hire",
                "givenName": "New",
                "uid": uid,
                "mail": f"{uid}@{cc}.xyz.com",
                "serialNumber": serial,
                "departmentNumber": template.first("departmentNumber") or "2000",
                "divisionNumber": template.first("divisionNumber") or "20",
                "entrySizeBytes": 6000,
            },
        )
        self.master.add(entry)
        self._employees.append(entry.dn)
        return True

    def _do_leave(self) -> bool:
        dn = self._random_employee()
        if dn is None:
            return False
        self.master.delete(dn)
        self._employees.remove(dn)
        return True

    def _do_rename(self) -> bool:
        dn = self._random_employee()
        if dn is None:
            return False
        new_rdn = f"cn={dn.rdn.value} (r{self.master.current_csn})"
        records = self.master.modify_dn(dn, new_rdn=new_rdn)
        self._employees.remove(dn)
        self._employees.append(records[0].new_dn)
        return True

    def _do_dept_entry(self) -> bool:
        dn = self._rng.choice(self._departments)
        if self.master.store.get(dn) is None:
            return False
        self.master.modify(
            dn,
            [
                Modification.replace(
                    "description", f"department (rev {self.master.current_csn})"
                )
            ],
        )
        return True
