"""Tests for attribute types, syntaxes and the registry."""


from repro.ldap import AttributeRegistry, AttributeType, DEFAULT_REGISTRY, Syntax
from repro.ldap.attributes import normalize_value


class TestNormalization:
    def test_directory_string_case_folds(self):
        at = AttributeType("cn")
        assert at.normalize("John  DOE ") == "john doe"

    def test_case_exact_keeps_case(self):
        at = AttributeType("mail", syntax=Syntax.CASE_EXACT_STRING)
        assert at.normalize(" John@x.com ") == "John@x.com"

    def test_integer_parses(self):
        at = AttributeType("age", syntax=Syntax.INTEGER)
        assert at.normalize("042") == 42
        assert at.normalize(" 7 ") == 7

    def test_integer_fallback_on_garbage(self):
        at = AttributeType("age", syntax=Syntax.INTEGER)
        assert at.normalize("unknown") == "unknown"

    def test_dn_string_case_folds(self):
        at = AttributeType("manager", syntax=Syntax.DN_STRING)
        assert at.normalize("CN=Boss,O=XYZ") == "cn=boss,o=xyz"


class TestRegistry:
    def test_known_types_resolve(self):
        assert DEFAULT_REGISTRY.get("sn").name == "sn"
        assert DEFAULT_REGISTRY.known("serialNumber")

    def test_aliases_resolve(self):
        assert DEFAULT_REGISTRY.get("surname").name == "sn"
        assert DEFAULT_REGISTRY.get("commonName").name == "cn"

    def test_case_insensitive_lookup(self):
        assert DEFAULT_REGISTRY.get("SERIALNUMBER").name == "serialNumber"

    def test_unknown_synthesized(self):
        at = DEFAULT_REGISTRY.get("x-custom-attr")
        assert at.name == "x-custom-attr"
        assert at.syntax is Syntax.DIRECTORY_STRING
        assert not DEFAULT_REGISTRY.known("x-custom-attr")

    def test_canonical_spelling(self):
        assert DEFAULT_REGISTRY.canonical("OBJECTCLASS") == "objectClass"
        assert DEFAULT_REGISTRY.canonical("never-seen") == "never-seen"

    def test_custom_registry_registration(self):
        reg = AttributeRegistry()
        reg.register(AttributeType("foo", aliases=("bar",)))
        assert reg.get("BAR").name == "foo"

    def test_age_is_integer_syntax(self):
        assert DEFAULT_REGISTRY.get("age").syntax is Syntax.INTEGER

    def test_objectclass_not_ordered(self):
        assert not DEFAULT_REGISTRY.get("objectClass").ordered


class TestModuleHelpers:
    def test_normalize_value_defaults(self):
        assert normalize_value("cn", "ABC") == "abc"

    def test_normalize_value_custom_registry(self):
        reg = AttributeRegistry([AttributeType("n", syntax=Syntax.INTEGER)])
        assert normalize_value("n", "5", reg) == 5
